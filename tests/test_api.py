"""Tests for the ``repro.api`` facade and the deprecation shims.

The facade must be a drop-in for the legacy entry points: same results
bit-for-bit, same argument shapes — plus sessions, stores and file
paths.  The legacy names keep working but warn.
"""

import pytest

import repro
from repro.api import Session, synthesize
from repro.core.config import RcgpConfig
from repro.core.engine import EvolutionRun
from repro.core.synthesis import (SynthesisResult, initialize_netlist,
                                  rcgp_synthesize)
from repro.flow import synthesize_file
from repro.io.rqfp_json import netlist_to_dict
from repro.logic.truth_table import TruthTable, tabulate_word

TOFFOLI_REAL = (".numvars 3\n.variables a b c\n.begin\nt3 a b c\n.end\n")


def _real_fixture(tmp_path) -> str:
    path = tmp_path / "toffoli.real"
    path.write_text(TOFFOLI_REAL)
    return str(path)


def _xor_spec():
    return [TruthTable.from_function(lambda a, b: a ^ b, 2)]


def _decoder_spec():
    return tabulate_word(lambda x: 1 << x, 2, 4)


class TestSynthesize:
    def test_tables_in_result_out(self):
        result = synthesize(_xor_spec(), RcgpConfig(generations=60, seed=3))
        assert isinstance(result, SynthesisResult)
        assert result.verify()
        assert result.evolution.fitness.functional

    def test_matches_direct_engine_run(self):
        """The facade adds scheduling, not different results."""
        spec = _decoder_spec()
        config = RcgpConfig(generations=100, seed=4)
        direct = EvolutionRun(spec, config,
                              initial=initialize_netlist(spec)).run()
        result = synthesize(spec, config)
        assert netlist_to_dict(result.evolution.netlist) == \
            netlist_to_dict(direct.netlist)
        assert result.evolution.evaluations == direct.evaluations
        assert result.evolution.fitness.key() == direct.fitness.key()

    def test_accepts_design_file_path(self, tmp_path):
        path = _real_fixture(tmp_path)
        result = synthesize(path, RcgpConfig(generations=40, seed=1))
        assert result.verify()

    def test_session_reuses_completed_jobs(self, tmp_path):
        spec = _xor_spec()
        config = RcgpConfig(generations=60, seed=3)
        with Session(str(tmp_path)) as session:
            first = session.synthesize(spec, config)
        with Session(str(tmp_path)) as session:
            job = session.submit(spec, config)
            assert job.from_store
            second = synthesize(spec, config, session=session)
        assert netlist_to_dict(first.evolution.netlist) == \
            netlist_to_dict(second.evolution.netlist)

    def test_session_many_jobs(self):
        specs = {"xor": _xor_spec(), "decoder": _decoder_spec()}
        with Session() as session:
            jobs = {name: session.submit(spec,
                                         RcgpConfig(generations=40, seed=2),
                                         name=name)
                    for name, spec in specs.items()}
            session.run()
            results = {name: job.result() for name, job in jobs.items()}
        assert all(r.verify() for r in results.values())
        assert set(session.results()) == {job.id for job in jobs.values()}

    def test_track_history_survives_the_facade(self):
        config = RcgpConfig(generations=60, seed=3, track_history=True)
        result = synthesize(_xor_spec(), config)
        assert result.evolution.history
        assert result.evolution.history[0][0] == 0


class TestDeprecatedShims:
    def test_rcgp_synthesize_warns_and_matches(self):
        spec = _xor_spec()
        config = RcgpConfig(generations=60, seed=3)
        new = synthesize(spec, config)
        with pytest.warns(DeprecationWarning, match="rcgp_synthesize"):
            old = rcgp_synthesize(spec, config)
        assert netlist_to_dict(old.evolution.netlist) == \
            netlist_to_dict(new.evolution.netlist)
        assert old.evolution.fitness.key() == new.evolution.fitness.key()
        assert old.cost.as_row()["n_r"] == new.cost.as_row()["n_r"]

    def test_synthesize_file_warns_and_matches(self, tmp_path):
        path = _real_fixture(tmp_path)
        config = RcgpConfig(generations=40, seed=1)
        new = synthesize(path, config)
        with pytest.warns(DeprecationWarning, match="synthesize_file"):
            old = synthesize_file(path, config)
        assert netlist_to_dict(old.evolution.netlist) == \
            netlist_to_dict(new.evolution.netlist)

    def test_legacy_names_still_exported(self):
        assert repro.rcgp_synthesize is rcgp_synthesize
        assert repro.synthesize_file is synthesize_file
        assert repro.synthesize is synthesize
        assert repro.Session is Session
        for name in ("synthesize", "Session", "Scheduler", "JobStore",
                     "JobSpec", "Job"):
            assert name in repro.__all__


class TestSessionTelemetry:
    def test_transient_session_honors_config_telemetry(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        config = RcgpConfig(generations=40, seed=2, telemetry_path=path)
        synthesize(_xor_spec(), config)
        lines = open(path).read().splitlines()
        assert lines, "telemetry file should not be empty"
        import json
        events = [json.loads(line) for line in lines]
        assert events[0]["event"] == "job_start"
        assert all("job_id" in e for e in events)
        assert any(e["event"] == "run_end" for e in events)
