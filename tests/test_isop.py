"""Unit + property tests for the Minato–Morreale ISOP implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.isop import Cube, best_phase_isop, cover_literals, cover_table, isop
from repro.logic.truth_table import TruthTable


class TestCube:
    def test_literals(self):
        cube = Cube(pos=0b101, neg=0b010)
        assert cube.literals() == [(0, False), (1, True), (2, False)]
        assert cube.num_literals() == 3

    def test_contradiction_rejected(self):
        with pytest.raises(ValueError):
            Cube(pos=0b1, neg=0b1)

    def test_tautology_cube(self):
        assert Cube(0, 0).table(2) == TruthTable.constant(True, 2)
        assert str(Cube(0, 0)) == "1"

    def test_table(self):
        cube = Cube(pos=0b01, neg=0b10)  # x0 & !x1
        assert cube.table(2) == TruthTable.from_function(
            lambda a, b: a & (1 - b), 2)

    def test_str(self):
        assert str(Cube(pos=0b1, neg=0b100)) == "x0!x2"


class TestIsop:
    def test_constant_zero(self):
        assert isop(TruthTable.constant(False, 3)) == []

    def test_constant_one(self):
        cubes = isop(TruthTable.constant(True, 3))
        assert cubes == [Cube(0, 0)]

    def test_single_variable(self):
        cubes = isop(TruthTable.variable(1, 3))
        assert len(cubes) == 1
        assert cubes[0] == Cube(pos=0b10, neg=0)

    def test_xor_needs_two_cubes(self):
        f = TruthTable.from_function(lambda a, b: a ^ b, 2)
        cubes = isop(f)
        assert len(cubes) == 2
        assert cover_table(cubes, 2) == f

    def test_cover_is_exact_exhaustive_3vars(self):
        for bits in range(256):
            f = TruthTable(3, bits)
            assert cover_table(isop(f), 3) == f

    def test_dont_cares_respected(self):
        onset = TruthTable.from_values([1, 0, 0, 0])
        dcset = TruthTable.from_values([0, 1, 0, 0])
        cubes = isop(onset, dcset)
        got = cover_table(cubes, 2)
        assert onset.implies(got)
        assert got.implies(onset | dcset)

    def test_dcset_arity_mismatch(self):
        with pytest.raises(ValueError):
            isop(TruthTable.constant(True, 2), TruthTable.constant(False, 3))

    def test_irredundant(self, rng):
        """Dropping any cube must uncover some onset minterm."""
        for _ in range(30):
            n = rng.randint(2, 5)
            f = TruthTable(n, rng.getrandbits(1 << n))
            cubes = isop(f)
            if len(cubes) < 2:
                continue
            for skip in range(len(cubes)):
                rest = cubes[:skip] + cubes[skip + 1:]
                assert cover_table(rest, n) != f


@settings(max_examples=200, deadline=None)
@given(num_vars=st.integers(0, 6), data=st.data())
def test_isop_cover_property(num_vars, data):
    bits = data.draw(st.integers(0, (1 << (1 << num_vars)) - 1))
    f = TruthTable(num_vars, bits)
    cubes = isop(f)
    assert cover_table(cubes, num_vars) == f


@settings(max_examples=100, deadline=None)
@given(num_vars=st.integers(1, 5), data=st.data())
def test_best_phase_property(num_vars, data):
    bits = data.draw(st.integers(0, (1 << (1 << num_vars)) - 1))
    f = TruthTable(num_vars, bits)
    cubes, complemented = best_phase_isop(f)
    realized = cover_table(cubes, num_vars)
    assert realized == (~f if complemented else f)
    # Best-phase must not be worse than the direct cover.
    direct = isop(f)
    assert (len(cubes), cover_literals(cubes)) <= \
        (len(direct), cover_literals(direct))
