"""Unit tests for RQFP gate semantics (paper §2.1, Fig. 1)."""

import pytest

from repro.rqfp.gate import (
    INVERTER_CONFIG,
    JJS_PER_BUFFER,
    JJS_PER_GATE,
    NORMAL_CONFIG,
    NUM_CONFIGS,
    SPLITTER_CONFIG,
    check_config,
    config_from_string,
    config_to_string,
    gate_output_tables,
    gate_outputs,
    inverter_bit,
    inverter_outputs,
    is_reversible_config,
    normal_gate,
    splitter_outputs,
)


def _maj(a, b, c):
    return (a & b) | (a & c) | (b & c)


class TestNormalGate:
    def test_paper_definition(self):
        """R(a,b,c) = {M(!a,b,c), M(a,!b,c), M(a,b,!c)} — Fig. 1(a)."""
        for t in range(8):
            a, b, c = t & 1, (t >> 1) & 1, (t >> 2) & 1
            x, y, z = normal_gate(a, b, c)
            assert x == _maj(1 - a, b, c)
            assert y == _maj(a, 1 - b, c)
            assert z == _maj(a, b, 1 - c)

    def test_logical_reversibility(self):
        """The normal gate is a bijection on (a,b,c) — Takeuchi's result."""
        assert is_reversible_config(NORMAL_CONFIG)

    def test_self_inverse(self):
        """R(R(a,b,c)) = (a,b,c): the normal RQFP gate is an involution."""
        for t in range(8):
            a, b, c = t & 1, (t >> 1) & 1, (t >> 2) & 1
            assert normal_gate(*normal_gate(a, b, c)) == (a, b, c)

    def test_config_value(self):
        assert NORMAL_CONFIG == 0b100010001
        assert config_to_string(NORMAL_CONFIG) == "100-010-001"


class TestSplitterInverter:
    def test_splitter_copies(self):
        assert splitter_outputs(0) == (0, 0, 0)
        assert splitter_outputs(1) == (1, 1, 1)

    def test_splitter_bit_parallel(self):
        word = 0b1011
        assert splitter_outputs(word, mask=0b1111) == (word, word, word)

    def test_splitter_not_reversible(self):
        assert not is_reversible_config(SPLITTER_CONFIG)

    def test_inverter_copies(self):
        assert inverter_outputs(0) == (1, 1, 1)
        assert inverter_outputs(1) == (0, 0, 0)


class TestConfigEncoding:
    def test_string_round_trip(self):
        for config in (0, NORMAL_CONFIG, SPLITTER_CONFIG, 511, 352):
            assert config_from_string(config_to_string(config)) == config

    def test_paper_example_352(self):
        """'101-100-000' is 352 in the paper's mutation example."""
        assert config_from_string("101-100-000") == 352
        assert config_to_string(352) == "101-100-000"

    def test_paper_mutation_example(self):
        """352 ^ ((1<<3)+(1<<4)+(1<<5)) = 344 = '101-011-000'."""
        mutated = 352 ^ ((1 << 3) + (1 << 4) + (1 << 5))
        assert mutated == 344
        assert config_to_string(mutated) == "101-011-000"

    def test_bad_strings_rejected(self):
        with pytest.raises(ValueError):
            config_from_string("101-100")
        with pytest.raises(ValueError):
            config_from_string("101-100-002")

    def test_config_range(self):
        assert NUM_CONFIGS == 512  # the paper's n_f
        with pytest.raises(ValueError):
            check_config(512)
        with pytest.raises(ValueError):
            check_config(-1)

    def test_inverter_bit_layout(self):
        # NORMAL: inverter before port m of majority m.
        for m in range(3):
            for p in range(3):
                assert inverter_bit(NORMAL_CONFIG, m, p) == (1 if m == p else 0)

    def test_inverter_bit_bad_indices(self):
        with pytest.raises(ValueError):
            inverter_bit(0, 3, 0)


class TestGateSemantics:
    def test_512_distinct_configs_behave_consistently(self):
        """Every config's outputs must match the bit-by-bit definition."""
        for config in range(NUM_CONFIGS):
            for t in (0b000, 0b101, 0b111):
                a, b, c = t & 1, (t >> 1) & 1, (t >> 2) & 1
                outs = gate_outputs(a, b, c, config)
                for m in range(3):
                    ports = []
                    for p, v in enumerate((a, b, c)):
                        if inverter_bit(config, m, p):
                            v ^= 1
                        ports.append(v)
                    assert outs[m] == _maj(*ports)

    def test_bit_parallel_agrees_with_scalar(self, rng):
        for _ in range(50):
            config = rng.randrange(NUM_CONFIGS)
            mask = 0xFF
            a, b, c = (rng.getrandbits(8) for _ in range(3))
            wide = gate_outputs(a, b, c, config, mask)
            for bit in range(8):
                scalar = gate_outputs((a >> bit) & 1, (b >> bit) & 1,
                                      (c >> bit) & 1, config)
                assert tuple((w >> bit) & 1 for w in wide) == scalar

    def test_output_tables_count_functions(self):
        """gate_output_tables(NORMAL) are the three majority variants."""
        tables = gate_output_tables(NORMAL_CONFIG)
        assert len(tables) == 3
        assert len(set(tables)) == 3

    def test_and_from_constant_specialization(self):
        """R(a,b,1) with normal config: third output is AND (paper §3.1)."""
        for t in range(4):
            a, b = t & 1, (t >> 1) & 1
            x, y, z = normal_gate(a, b, 1)
            assert z == (a & b)
            assert x == ((1 - a) | b)
            assert y == (a | (1 - b))


class TestCostModel:
    def test_jj_constants(self):
        """24 JJ/gate + 4 JJ/buffer validated against Table 1 rows."""
        assert JJS_PER_GATE == 24 and JJS_PER_BUFFER == 4
        # full adder RCGP row: 3 gates, 2 buffers, 80 JJs.
        assert 24 * 3 + 4 * 2 == 80
        # alu RCGP row: 4 gates, 6 buffers, 120 JJs.
        assert 24 * 4 + 4 * 6 == 120
        # hwb8 initialization row: 1427 gates, 2727 buffers, 45156 JJs.
        assert 24 * 1427 + 4 * 2727 == 45156
