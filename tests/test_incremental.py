"""Incremental cone-aware evaluation: bit-exactness properties.

The contract under test: for any netlist and any mutation,
``Evaluator.evaluate_incremental(child, delta, state)`` returns exactly
the fitness ``Evaluator.evaluate(child)`` would — the incremental layer
is an optimization, never an approximation.  The properties are checked
over random netlists x random mutation sequences, plus the structured
corner cases (epoch bumps, stale states, window boundaries).
"""

import os
import random
import subprocess
import sys

import pytest

from repro.bench.random_circuits import random_rqfp
from repro.bench.registry import get_benchmark
from repro.core.config import RcgpConfig
from repro.core.engine import EvolutionRun, InlineBackend, encode_genome
from repro.core.fitness import Evaluator
from repro.core.mutation import MutationDelta, mutate, mutate_with_delta
from repro.core.simstate import SimulationState
from repro.core.synthesis import initialize_netlist
from repro.core.windowing import windowed_optimize
from repro.logic.truth_table import TruthTable


def _mutation_config(**kwargs):
    base = dict(mutation_rate=0.25, max_mutated_genes=6, seed=5)
    base.update(kwargs)
    return RcgpConfig(**base)


class TestDeltaStructure:
    def test_apply_to_reconstructs_child(self):
        rng = random.Random(11)
        config = _mutation_config()
        for trial in range(30):
            parent = random_rqfp(4, 12, 3, random.Random(100 + trial))
            child, delta = mutate_with_delta(parent, random.Random(trial),
                                             config)
            rebuilt = delta.apply_to(parent)
            assert encode_genome(rebuilt) == encode_genome(child)
            # The parent itself is untouched.
            assert encode_genome(parent) != encode_genome(child) or \
                delta.is_empty or True  # equal genomes are legal (no-op)

    def test_mutate_shim_matches_mutate_with_delta(self):
        config = _mutation_config()
        parent = random_rqfp(5, 10, 4, random.Random(2))
        a = mutate(parent, random.Random(99), config)
        b, _ = mutate_with_delta(parent, random.Random(99), config)
        assert encode_genome(a) == encode_genome(b)

    def test_touched_gates_cover_every_changed_gate(self):
        config = _mutation_config()
        for trial in range(30):
            parent = random_rqfp(4, 14, 3, random.Random(trial))
            child, delta = mutate_with_delta(parent, random.Random(trial),
                                             config)
            touched = set(delta.touched_gates)
            for g, (pg, cg) in enumerate(zip(parent.gates, child.gates)):
                if (pg.in0, pg.in1, pg.in2, pg.config) != \
                        (cg.in0, cg.in1, cg.in2, cg.config):
                    assert g in touched
            changed_pos = {i for i, (a, b)
                           in enumerate(zip(parent.outputs, child.outputs))
                           if a != b}
            assert changed_pos <= {i for i, _ in delta.outputs}

    def test_empty_delta_is_empty(self):
        assert MutationDelta().is_empty
        assert not MutationDelta(gates=((0, (0, 0, 0, 0)),)).is_empty


class TestIncrementalEqualsFull:
    def test_random_netlists_random_mutation_chains(self):
        """The core property: chains of mutations from an evolving
        parent, incremental fitness == full fitness at every step."""
        config = _mutation_config()
        for trial in range(12):
            outer = random.Random(1000 + trial)
            parent = random_rqfp(4, 15, 3, outer)
            spec = parent.to_truth_tables()  # parent is functional
            evaluator = Evaluator(spec, config)
            reference = Evaluator(spec, config)
            state = evaluator.prepare_parent(parent)
            for step in range(8):
                child, delta = mutate_with_delta(parent, outer, config)
                incremental = evaluator.evaluate_incremental(child, delta,
                                                             state)
                full = reference.evaluate(child)
                assert incremental.key() == full.key(), \
                    f"trial {trial} step {step}: {incremental} != {full}"
                parent = child
                state = evaluator.prepare_parent(parent)
            assert evaluator.eval_incremental == 8
            assert evaluator.ports_resimulated >= 0

    def test_non_functional_spec(self):
        """Against an unrelated random spec every candidate is partial;
        the success-rate arithmetic must still agree bit for bit."""
        config = _mutation_config()
        rng = random.Random(7)
        parent = random_rqfp(4, 12, 3, rng)
        spec = [TruthTable(4, rng.getrandbits(16)) for _ in range(3)]
        evaluator = Evaluator(spec, config)
        reference = Evaluator(spec, config)
        state = evaluator.prepare_parent(parent)
        for _ in range(20):
            child, delta = mutate_with_delta(parent, rng, config)
            assert evaluator.evaluate_incremental(
                child, delta, state).key() == reference.evaluate(child).key()

    def test_benchmark_circuit(self):
        benchmark = get_benchmark("alu")
        spec = benchmark.spec()
        parent = initialize_netlist(spec, "alu")
        config = _mutation_config(mutation_rate=0.1)
        evaluator = Evaluator(spec, config)
        reference = Evaluator(spec, config)
        state = evaluator.prepare_parent(parent)
        rng = random.Random(13)
        for _ in range(40):
            child, delta = mutate_with_delta(parent, rng, config)
            assert evaluator.evaluate_incremental(
                child, delta, state).key() == reference.evaluate(child).key()

    def test_check_incremental_env_flag(self):
        """RCGP_CHECK_INCREMENTAL verifies every sweep against a full
        simulation (and passes on correct code)."""
        env = dict(os.environ)
        env["RCGP_CHECK_INCREMENTAL"] = "1"
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        code = (
            "import random\n"
            "from repro.bench.random_circuits import random_rqfp\n"
            "from repro.core.config import RcgpConfig\n"
            "from repro.core.fitness import Evaluator\n"
            "from repro.core.mutation import mutate_with_delta\n"
            "rng = random.Random(3)\n"
            "parent = random_rqfp(4, 12, 3, rng)\n"
            "config = RcgpConfig(mutation_rate=0.3, max_mutated_genes=5,"
            " seed=1)\n"
            "ev = Evaluator(parent.to_truth_tables(), config)\n"
            "assert ev._check_incremental\n"
            "state = ev.prepare_parent(parent)\n"
            "for _ in range(15):\n"
            "    child, delta = mutate_with_delta(parent, rng, config)\n"
            "    ev.evaluate_incremental(child, delta, state)\n"
            "print('checked', ev.eval_incremental)\n"
        )
        result = subprocess.run([sys.executable, "-c", code], env=env,
                                capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert "checked 15" in result.stdout


class TestFallbacks:
    def _sampled_evaluator(self, spec):
        config = RcgpConfig(exhaustive_input_limit=2, verify_with_sat=False,
                            simulation_patterns=64, seed=9,
                            mutation_rate=0.2, max_mutated_genes=4)
        return Evaluator(spec, config, random.Random(9)), config

    def test_stale_epoch_falls_back_to_full(self):
        rng = random.Random(21)
        parent = random_rqfp(4, 10, 3, rng)
        evaluator, config = self._sampled_evaluator(parent.to_truth_tables())
        state = evaluator.prepare_parent(parent)
        child, delta = mutate_with_delta(parent, rng, config)
        evaluator.add_counterexample(5)  # epoch bump
        assert state.epoch != evaluator.pattern_epoch
        before_full = evaluator.eval_full
        fitness = evaluator.evaluate_incremental(child, delta, state)
        assert evaluator.eval_full == before_full + 1
        assert evaluator.eval_incremental == 0
        # And the fallback result equals a from-scratch evaluation.
        fresh, _ = self._sampled_evaluator(parent.to_truth_tables())
        fresh.add_counterexample(5)
        assert fitness.key() == fresh.evaluate(child).key()

    def test_none_state_falls_back(self):
        rng = random.Random(4)
        parent = random_rqfp(3, 8, 2, rng)
        config = _mutation_config()
        evaluator = Evaluator(parent.to_truth_tables(), config)
        child, delta = mutate_with_delta(parent, rng, config)
        assert evaluator.evaluate_incremental(child, delta, None).key() == \
            Evaluator(parent.to_truth_tables(), config).evaluate(child).key()
        assert evaluator.eval_full == 1

    def test_shape_mismatch_falls_back(self):
        rng = random.Random(6)
        parent = random_rqfp(3, 8, 2, rng)
        other = random_rqfp(3, 9, 2, rng)  # one gate more
        config = _mutation_config()
        evaluator = Evaluator(parent.to_truth_tables(), config)
        state = evaluator.prepare_parent(parent)
        assert not state.compatible(other)
        evaluator.evaluate_incremental(other, MutationDelta(), state)
        assert evaluator.eval_full == 1
        assert evaluator.eval_incremental == 0

    def test_add_counterexample_matches_full_rebuild(self):
        """The satellite fix: appending counterexamples incrementally
        must produce exactly the words a full re-tabulation would."""
        rng = random.Random(31)
        parent = random_rqfp(4, 10, 3, rng)
        spec = parent.to_truth_tables()
        incremental, _ = self._sampled_evaluator(spec)
        for pattern in (3, 9, 14, 3, 0, 15):
            incremental.add_counterexample(pattern)
        rebuilt, _ = self._sampled_evaluator(spec)
        rebuilt._patterns = list(incremental._patterns)
        rebuilt._rebuild_words()
        assert incremental._mask == rebuilt._mask
        assert incremental._words == rebuilt._words
        assert incremental._expected == rebuilt._expected
        assert incremental._total_bits == rebuilt._total_bits


class TestEngineIntegration:
    def _run(self, incremental, **kwargs):
        benchmark = get_benchmark("decoder_2_4")
        spec = benchmark.spec()
        config = RcgpConfig(generations=60, offspring=4, mutation_rate=0.2,
                            max_mutated_genes=4, seed=77,
                            incremental_eval=incremental, **kwargs)
        return EvolutionRun(spec, config, name="decoder_2_4").run()

    def test_incremental_run_matches_full_run(self):
        full = self._run(False)
        incr = self._run(True)
        assert incr.fitness.key() == full.fitness.key()
        assert incr.netlist.describe() == full.netlist.describe()
        assert incr.evaluations == full.evaluations
        assert incr.eval_incremental > 0
        assert incr.ports_resimulated > 0
        assert full.eval_incremental == 0
        assert full.eval_full == full.evaluations

    def test_incremental_run_matches_with_cache_disabled(self):
        full = self._run(False, eval_cache_size=0)
        incr = self._run(True, eval_cache_size=0)
        assert incr.fitness.key() == full.fitness.key()
        assert incr.netlist.describe() == full.netlist.describe()

    def test_inline_backend_evaluate_deltas(self):
        rng = random.Random(8)
        parent = random_rqfp(4, 10, 3, rng)
        spec = parent.to_truth_tables()
        config = _mutation_config()
        evaluator = Evaluator(spec, config)
        backend = InlineBackend(evaluator)
        mutants = [mutate_with_delta(parent, rng, config) for _ in range(6)]
        got = backend.evaluate_deltas(encode_genome(parent),
                                      [d for _, d in mutants],
                                      [c for c, _ in mutants])
        reference = Evaluator(spec, config)
        want = [reference.evaluate(c) for c, _ in mutants]
        assert [f.key() for f in got] == [f.key() for f in want]
        # Without pre-built children, deltas alone must reconstruct them.
        backend2 = InlineBackend(Evaluator(spec, config))
        got2 = backend2.evaluate_deltas(encode_genome(parent),
                                        [d for _, d in mutants])
        assert [f.key() for f in got2] == [f.key() for f in want]

    @pytest.mark.slow
    def test_pool_backend_incremental_matches(self):
        benchmark = get_benchmark("decoder_2_4")
        spec = benchmark.spec()
        config = RcgpConfig(generations=25, offspring=8, mutation_rate=0.2,
                            max_mutated_genes=4, seed=31, workers=2,
                            incremental_eval=True)
        pooled = EvolutionRun(spec, config, name="decoder_2_4").run()
        inline = EvolutionRun(
            spec, config.replace(workers=0), name="decoder_2_4").run()
        assert pooled.fitness.key() == inline.fitness.key()
        assert pooled.netlist.describe() == inline.netlist.describe()
        assert pooled.eval_incremental > 0


class TestWindowedCones:
    def test_window_boundary_cone_and_counters(self):
        """Windowed optimization: the window is the sub-netlist, so
        every cone is window-local; the WindowResult aggregates the
        incremental counters of all window runs."""
        benchmark = get_benchmark("intdiv4")
        spec = benchmark.spec()
        netlist = initialize_netlist(spec, "intdiv4")
        config = RcgpConfig(generations=40, mutation_rate=0.5,
                            max_mutated_genes=3, seed=17, shrink="always")
        stats = windowed_optimize(netlist, window_gates=8, rounds=1,
                                  config=config, seed=3)
        assert stats.windows_tried > 0
        assert stats.eval_incremental > 0
        # Cones cannot exceed a window: every incremental evaluation
        # resimulated at most the window's own port count.
        assert stats.ports_resimulated <= \
            stats.eval_incremental * 3 * (8 + 4)  # window + optimizer slack
        stats_full = windowed_optimize(
            netlist, window_gates=8, rounds=1,
            config=config.replace(incremental_eval=False), seed=3)
        assert stats_full.eval_incremental == 0
        assert stats_full.netlist.describe() == stats.netlist.describe()
