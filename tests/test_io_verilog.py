"""Unit tests for the structural Verilog reader / writer."""

import pytest

from repro.errors import ParseError
from repro.io.verilog import parse_verilog, write_verilog
from repro.logic.truth_table import TruthTable
from repro.networks.convert import tables_to_aig

MUX_V = """
// 2:1 multiplexer
module mux2(s, d0, d1, y);
  input s, d0, d1;
  output y;
  assign y = (s & d1) | (~s & d0);
endmodule
"""

GATES_V = """
module gates(a, b, y0, y1, y2);
  input a, b;
  output y0, y1, y2;
  wire t;
  and g1 (t, a, b);
  nor g2 (y0, a, b);
  xor g3 (y1, a, b);
  not g4 (y2, t);
endmodule
"""


class TestParseAssigns:
    def test_mux(self):
        aig = parse_verilog(MUX_V)
        assert aig.name == "mux2"
        tts = aig.to_truth_tables()
        assert tts[0] == TruthTable.from_function(
            lambda s, d0, d1: d1 if s else d0, 3)

    def test_ternary(self):
        text = """module m(s, a, b, y);
  input s, a, b; output y;
  assign y = s ? a : b;
endmodule"""
        aig = parse_verilog(text)
        assert aig.to_truth_tables()[0] == TruthTable.from_function(
            lambda s, a, b: a if s else b, 3)

    def test_precedence_and_before_or(self):
        text = """module m(a, b, c, y);
  input a, b, c; output y;
  assign y = a | b & c;
endmodule"""
        aig = parse_verilog(text)
        assert aig.to_truth_tables()[0] == TruthTable.from_function(
            lambda a, b, c: a | (b & c), 3)

    def test_xor_chain_and_constants(self):
        text = """module m(a, y0, y1);
  input a; output y0, y1;
  assign y0 = a ^ 1'b1;
  assign y1 = a & 1'b0;
endmodule"""
        aig = parse_verilog(text)
        tts = aig.to_truth_tables()
        assert tts[0] == ~TruthTable.variable(0, 1)
        assert tts[1] == TruthTable.constant(False, 1)

    def test_parentheses(self):
        text = """module m(a, b, c, y);
  input a, b, c; output y;
  assign y = ~(a & (b | ~c));
endmodule"""
        aig = parse_verilog(text)
        assert aig.to_truth_tables()[0] == TruthTable.from_function(
            lambda a, b, c: 1 - (a & (b | (1 - c))), 3)


class TestParseGates:
    def test_primitive_gates(self):
        aig = parse_verilog(GATES_V)
        tts = aig.to_truth_tables()
        assert tts[0] == TruthTable.from_function(
            lambda a, b: 1 - (a | b), 2)
        assert tts[1] == TruthTable.from_function(lambda a, b: a ^ b, 2)
        assert tts[2] == TruthTable.from_function(
            lambda a, b: 1 - (a & b), 2)

    def test_wide_nand(self):
        text = """module m(a, b, c, y);
  input a, b, c; output y;
  nand g (y, a, b, c);
endmodule"""
        aig = parse_verilog(text)
        assert aig.to_truth_tables()[0] == TruthTable.from_function(
            lambda a, b, c: 1 - (a & b & c), 3)


class TestParseErrors:
    def test_no_module(self):
        with pytest.raises(ParseError):
            parse_verilog("assign y = a;")

    def test_missing_endmodule(self):
        with pytest.raises(ParseError):
            parse_verilog("module m(a); input a;")

    def test_vector_ports_rejected(self):
        with pytest.raises(ParseError):
            parse_verilog("""module m(a, y);
  input [3:0] a; output y;
  assign y = a;
endmodule""")

    def test_undriven_output(self):
        with pytest.raises(ParseError):
            parse_verilog("module m(a, y); input a; output y; endmodule")

    def test_combinational_loop(self):
        with pytest.raises(ParseError):
            parse_verilog("""module m(a, y);
  input a; output y;
  wire t;
  assign t = y;
  assign y = t;
endmodule""")


class TestWrite:
    def test_round_trip(self, random_tables):
        tables = random_tables(4, 2)
        aig = tables_to_aig(tables, name="rt")
        again = parse_verilog(write_verilog(aig))
        assert again.to_truth_tables() == tables

    def test_round_trip_constants(self):
        tables = [TruthTable.constant(True, 1)]
        aig = tables_to_aig(tables)
        again = parse_verilog(write_verilog(aig))
        assert again.to_truth_tables() == tables

    def test_module_name_override(self):
        aig = tables_to_aig([TruthTable.variable(0, 1)])
        text = write_verilog(aig, module_name="custom")
        assert text.startswith("module custom(")
