"""Worker-side mutation replay: run-level bit-identity.

The parallel backend has three execution modes and all of them must
produce exactly the serial engine's trajectory:

* **replay** (the default): workers re-derive every offspring from the
  RNG keys ``(seed, absolute generation, index)`` and run whole
  generation spans locally;
* **shipped-delta** (``RCGP_REPLAY=0``): the coordinator mutates and
  ships packed deltas per generation, workers only evaluate;
* **check mode** (``RCGP_CHECK_INCREMENTAL=1``): replay with span
  length one, the coordinator's own deltas shipped alongside so the
  worker cross-checks its re-derived mutations, and every incremental
  sweep verified against a full simulation.

"Bit-identical" here means the final genome, the improvement history,
and every evaluation counter (``evaluations``, ``eval_full``,
``eval_incremental``, ``ports_resimulated``) — not just the fitness.
The scheduler/sliced and HTTP-served flavours of the same guarantee
live in ``tests/test_jobs.py`` and ``tests/test_service.py``.
"""

import random

import pytest

from repro.bench.registry import get_benchmark
from repro.core.config import RcgpConfig
from repro.core.engine import EvolutionRun, encode_genome
from repro.core.synthesis import initialize_netlist

GENERATIONS = 120


def _config(workers, **kwargs):
    base = dict(mutation_rate=0.08, max_mutated_genes=8, seed=2024,
                eval_cache_size=0, shrink="on_improvement",
                generations=GENERATIONS, kernel="flat", workers=workers)
    base.update(kwargs)
    return RcgpConfig(**base)


def _signature(result):
    return {
        "genome": encode_genome(result.netlist),
        "fitness": result.fitness.key(),
        "history": result.history,
        "evaluations": result.evaluations,
        "eval_full": result.eval_full,
        "eval_incremental": result.eval_incremental,
        "ports_resimulated": result.ports_resimulated,
    }


@pytest.fixture(scope="module")
def intdiv9():
    benchmark = get_benchmark("intdiv9")
    return benchmark.spec(), initialize_netlist(benchmark.spec(),
                                                benchmark.name)


def _run(spec, initial, workers, **kwargs):
    return EvolutionRun(spec, _config(workers, **kwargs), initial=initial,
                        name="intdiv9").run()


class TestFourPathEquality:
    @pytest.mark.parametrize("shrink", ["on_improvement", "always"])
    def test_parallel_paths_match_serial(self, intdiv9, monkeypatch,
                                         shrink):
        spec, initial = intdiv9
        monkeypatch.delenv("RCGP_REPLAY", raising=False)
        monkeypatch.delenv("RCGP_CHECK_INCREMENTAL", raising=False)

        serial = _signature(_run(spec, initial, workers=0, shrink=shrink))

        replay = _run(spec, initial, workers=2, shrink=shrink)
        assert replay.backend == "process-pool"
        assert _signature(replay) == serial
        # Replay actually engaged: spans crossed the wire.
        assert replay.chunks_dispatched > 0
        assert replay.bytes_shipped > 0

        monkeypatch.setenv("RCGP_REPLAY", "0")
        shipped = _run(spec, initial, workers=2, shrink=shrink)
        assert _signature(shipped) == serial
        monkeypatch.delenv("RCGP_REPLAY")

        monkeypatch.setenv("RCGP_CHECK_INCREMENTAL", "1")
        checked = _run(spec, initial, workers=2, shrink=shrink)
        assert _signature(checked) == serial

    def test_replay_advances_parent_on_neutral_drift(self, intdiv9,
                                                     monkeypatch):
        """Neutral-accept decisions taken worker-side land the
        coordinator on the same parent the serial loop holds."""
        spec, initial = intdiv9
        monkeypatch.delenv("RCGP_REPLAY", raising=False)
        monkeypatch.delenv("RCGP_CHECK_INCREMENTAL", raising=False)
        # A hotter mutation rate drives more neutral acceptance.
        serial = _run(spec, initial, workers=0, mutation_rate=0.15)
        pooled = _run(spec, initial, workers=2, mutation_rate=0.15)
        assert _signature(pooled) == _signature(serial)

    def test_small_spec_round_trips(self, monkeypatch):
        """Replay equality on a tiny random spec (fast smoke: exercises
        short spans, frequent improvements, early stop)."""
        from repro.bench.random_circuits import random_rqfp
        monkeypatch.delenv("RCGP_REPLAY", raising=False)
        monkeypatch.delenv("RCGP_CHECK_INCREMENTAL", raising=False)
        netlist = random_rqfp(3, 10, 2, random.Random(42))
        spec = netlist.to_truth_tables()
        initial = initialize_netlist(spec)
        serial = _signature(EvolutionRun(
            spec, _config(0, generations=80, seed=7),
            initial=initial).run())
        pooled = _signature(EvolutionRun(
            spec, _config(2, generations=80, seed=7),
            initial=initial).run())
        assert pooled == serial
