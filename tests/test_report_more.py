"""Additional reporting coverage: sign formatting, exact-success cells."""

import pytest

from repro.harness.report import Aggregates, aggregates, format_rows
from repro.harness.runner import ExperimentRow
from repro.rqfp.metrics import CircuitCost


def _row(init, rcgp, exact=None):
    return ExperimentRow(
        name="r", n_pi=2, n_po=2, g_lb=0,
        init=CircuitCost(*init), rcgp=CircuitCost(*rcgp),
        exact=CircuitCost(*exact) if exact else None,
        exact_timeout=exact is None, paper={},
    )


class TestAggregateFormatting:
    def test_reduction_renders_negative(self):
        agg = Aggregates(0.25, 0.5, 0.1, 1)
        text = str(agg)
        assert "gates -25.00%" in text
        assert "garbage -50.00%" in text

    def test_increase_renders_positive(self):
        """A JJ increase (negative reduction) must read as +, not --."""
        agg = Aggregates(0.25, 0.5, -0.0935, 1)
        text = str(agg)
        assert "JJs +9.35%" in text
        assert "--" not in text


class TestFormatRowsExactSuccess:
    def test_exact_columns_filled_when_present(self):
        rows = [_row((5, 2, 3, 6, 0.1), (4, 2, 3, 2, 1.0),
                     exact=(3, 3, 3, 1, 40.0))]
        text = format_rows(rows)
        assert "\\" not in text       # no timeout cells
        line = [l for l in text.splitlines() if l.startswith("r")][0]
        assert " 3 " in f" {line} "   # exact gate count appears

    def test_mixed_rows_align(self):
        rows = [
            _row((5, 2, 3, 6), (4, 2, 3, 2), exact=(3, 3, 3, 1, 40.0)),
            _row((9, 1, 4, 9), (7, 1, 4, 5)),
        ]
        text = format_rows(rows)
        lines = [l for l in text.splitlines() if l and not l.startswith("-")]
        widths = {len(l) for l in lines[:3]}
        assert len(widths) == 1, "header and rows must align"


class TestAggregatesJJ:
    def test_jj_uses_cost_model(self):
        rows = [_row((10, 10, 1, 1), (5, 5, 1, 1))]
        agg = aggregates(rows)
        # init JJs = 280, rcgp JJs = 140 -> 50 % reduction.
        assert agg.jj_reduction == pytest.approx(0.5)
