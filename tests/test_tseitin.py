"""Unit tests for the Tseitin gate encodings."""

import itertools

import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import SAT, UNSAT, Solver
from repro.sat.tseitin import (
    GateEncoder,
    encode_and,
    encode_and_many,
    encode_buf,
    encode_const,
    encode_equal,
    encode_maj3,
    encode_mux,
    encode_or,
    encode_or_many,
    encode_xor,
    encode_xor_many,
)


def _check_gate(encode_fn, arity, reference):
    """The encoded output must equal the reference on all input patterns."""
    for pattern in itertools.product([False, True], repeat=arity):
        cnf = CNF()
        inputs = cnf.new_vars(arity)
        out = encode_fn(cnf, *inputs)
        for lit, value in zip(inputs, pattern):
            cnf.add_clause([lit if value else -lit])
        expected = reference(*pattern)
        # Forcing the correct output stays SAT...
        sat_cnf = CNF.from_dimacs(cnf.to_dimacs())
        sat_cnf.add_clause([out if expected else -out])
        assert Solver(sat_cnf).solve() == SAT, (pattern, "should be SAT")
        # ...and forcing the wrong output is UNSAT.
        unsat_cnf = CNF.from_dimacs(cnf.to_dimacs())
        unsat_cnf.add_clause([-out if expected else out])
        assert Solver(unsat_cnf).solve() == UNSAT, (pattern, "should be UNSAT")


class TestPrimitives:
    def test_and(self):
        _check_gate(encode_and, 2, lambda a, b: a and b)

    def test_or(self):
        _check_gate(encode_or, 2, lambda a, b: a or b)

    def test_xor(self):
        _check_gate(encode_xor, 2, lambda a, b: a != b)

    def test_maj3(self):
        _check_gate(encode_maj3, 3, lambda a, b, c: (a + b + c) >= 2)

    def test_mux(self):
        _check_gate(encode_mux, 3, lambda s, i0, i1: i1 if s else i0)

    def test_buf(self):
        _check_gate(encode_buf, 1, lambda a: a)

    def test_negated_inputs(self):
        """Literal negation must encode inversion for free."""
        cnf = CNF()
        a, b = cnf.new_vars(2)
        out = encode_and(cnf, -a, b)  # !a & b
        cnf.add_clauses([[-a], [b]])
        cnf.add_clause([out])
        assert Solver(cnf).solve() == SAT


class TestNary:
    def test_and_many(self):
        _check_gate(lambda cnf, *ins: encode_and_many(cnf, list(ins)), 4,
                    lambda *ins: all(ins))

    def test_or_many(self):
        _check_gate(lambda cnf, *ins: encode_or_many(cnf, list(ins)), 4,
                    lambda *ins: any(ins))

    def test_xor_many(self):
        _check_gate(lambda cnf, *ins: encode_xor_many(cnf, list(ins)), 4,
                    lambda *ins: sum(ins) % 2 == 1)

    def test_empty_and_is_true(self):
        cnf = CNF()
        out = encode_and_many(cnf, [])
        cnf.add_clause([out])
        assert Solver(cnf).solve() == SAT

    def test_empty_or_is_false(self):
        cnf = CNF()
        out = encode_or_many(cnf, [])
        cnf.add_clause([out])
        assert Solver(cnf).solve() == UNSAT


class TestHelpers:
    def test_const(self):
        cnf = CNF()
        t = encode_const(cnf, True)
        f = encode_const(cnf, False)
        cnf.add_clause([t])
        cnf.add_clause([-f])
        assert Solver(cnf).solve() == SAT

    def test_equal(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        encode_equal(cnf, a, b)
        cnf.add_clauses([[a], [-b]])
        assert Solver(cnf).solve() == UNSAT

    def test_gate_encoder_consts_cached(self):
        cnf = CNF()
        enc = GateEncoder(cnf)
        assert enc.const_true() == enc.const_true()
        assert enc.const_false() == -enc.const_true()

    def test_gate_encoder_ops(self):
        cnf = CNF()
        enc = GateEncoder(cnf)
        a, b, c = cnf.new_vars(3)
        out = enc.maj3(enc.and2(a, b), enc.or2(a, c), enc.xor2(b, c))
        cnf.add_clauses([[a], [b], [-c]])
        cnf.add_clause([out])
        # a=1,b=1,c=0: and=1, or=1, xor=1 -> maj=1.
        assert Solver(cnf).solve() == SAT
