"""Unit + property tests for splitter insertion (fan-out legalization)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.random_circuits import random_rqfp
from repro.rqfp.gate import NORMAL_CONFIG, SPLITTER_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist
from repro.rqfp.splitters import count_required_splitters, insert_splitters


def _shared_pi_netlist(consumers: int):
    """One PI feeding `consumers` single-gate consumers."""
    netlist = RqfpNetlist(1)
    for g in range(consumers):
        gate = netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(gate, 0))
    return netlist


class TestInsertSplitters:
    def test_legal_netlist_unchanged_in_size(self):
        netlist = RqfpNetlist(2)
        gate = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(gate, 2))
        legal = insert_splitters(netlist)
        assert legal.num_gates == netlist.num_gates
        assert legal.to_truth_tables() == netlist.to_truth_tables()

    @pytest.mark.parametrize("k,expected_splitters", [
        (2, 1), (3, 1), (4, 2), (5, 2), (6, 3), (7, 3),
    ])
    def test_splitter_counts(self, k, expected_splitters):
        """k consumers need ceil((k-1)/2) splitters."""
        netlist = _shared_pi_netlist(k)
        legal = insert_splitters(netlist)
        assert legal.num_gates == k + expected_splitters
        assert count_required_splitters(netlist) == expected_splitters

    def test_function_preserved(self):
        netlist = _shared_pi_netlist(5)
        legal = insert_splitters(netlist)
        assert legal.to_truth_tables() == netlist.to_truth_tables()

    def test_single_fanout_after_insertion(self):
        netlist = _shared_pi_netlist(7)
        legal = insert_splitters(netlist)
        legal.validate(require_single_fanout=True)
        assert legal.fanout_violations() == []

    def test_splitter_gates_use_splitter_config(self):
        netlist = _shared_pi_netlist(3)
        legal = insert_splitters(netlist)
        configs = [g.config for g in legal.gates]
        assert configs.count(SPLITTER_CONFIG) == 1

    def test_po_sharing_legalized(self):
        """Two POs reading the same port also get a splitter."""
        netlist = RqfpNetlist(1)
        gate = netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        port = netlist.gate_output_port(gate, 0)
        netlist.add_output(port, "y0")
        netlist.add_output(port, "y1")
        legal = insert_splitters(netlist)
        legal.validate()
        assert legal.num_gates == 2
        tts = legal.to_truth_tables()
        assert tts[0] == tts[1]

    def test_idempotent(self, rng):
        for _ in range(10):
            netlist = random_rqfp(3, 6, 2, rng)
            once = insert_splitters(netlist)
            twice = insert_splitters(once)
            assert twice.num_gates == once.num_gates

    def test_balanced_tree_depth(self):
        """Queue-based splitting yields logarithmic splitter depth."""
        netlist = _shared_pi_netlist(9)
        legal = insert_splitters(netlist)
        # 9 consumers need 4 splitters; a balanced tree adds depth
        # ceil(log3-ish) = 2, not 4.
        assert legal.depth() <= 1 + 3


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 4), st.integers(1, 8), st.integers(1, 3),
       st.integers(0, 2 ** 31))
def test_insertion_invariants(num_inputs, num_gates, num_outputs, seed):
    import random
    netlist = random_rqfp(num_inputs, num_gates, num_outputs,
                          random.Random(seed))
    legal = insert_splitters(netlist)
    legal.validate(require_single_fanout=True)
    assert legal.to_truth_tables() == netlist.to_truth_tables()
    assert legal.num_gates >= netlist.num_gates
