"""Docs freshness: every ```python block in the docs compiles and runs.

Thin pytest wrapper over ``tools/docs_smoke.py`` so a stale doc fails
the tier-1 suite with the offending file:line in the test id.  Blocks
whose first line is ``# doc: no-run`` only have their imports executed
(dead names still fail); all other blocks run in full.
"""

import os
import sys

import pytest

TOOLS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)

from docs_smoke import DocBlock, extract_blocks, iter_blocks, run_block  # noqa: E402

BLOCKS = iter_blocks()


def test_docs_have_python_blocks():
    # The doc set is part of the deliverable — if extraction finds
    # nothing, the scanner (or the docs) broke.
    assert len(BLOCKS) >= 5
    paths = {block.path for block in BLOCKS}
    assert "README.md" in paths
    assert any(p.startswith("docs" + os.sep) or p.startswith("docs/") for p in paths)


def test_some_blocks_actually_execute():
    # The no-run escape hatch must stay the exception, not the rule.
    runnable = [b for b in BLOCKS if not b.no_run]
    assert len(runnable) >= 3


@pytest.mark.parametrize(
    "block", BLOCKS, ids=[f"{b.path}:{b.lineno}" for b in BLOCKS]
)
def test_doc_block(block):
    run_block(block)


def test_dead_import_fails_even_in_no_run_block():
    block = DocBlock("synthetic.md", 1,
                     "# doc: no-run\nfrom repro import NoSuchName\n")
    with pytest.raises(ImportError):
        run_block(block)


def test_syntax_error_fails_even_in_no_run_block():
    block = DocBlock("synthetic.md", 1, "# doc: no-run\ndef broken(:\n")
    with pytest.raises(SyntaxError):
        run_block(block)


def test_unterminated_fence_is_an_error(tmp_path):
    import docs_smoke

    bad = tmp_path / "bad.md"
    bad.write_text("```python\nx = 1\n")
    original = docs_smoke.REPO_ROOT
    docs_smoke.REPO_ROOT = str(tmp_path)
    try:
        with pytest.raises(ValueError, match="unterminated"):
            list(extract_blocks("bad.md"))
    finally:
        docs_smoke.REPO_ROOT = original
