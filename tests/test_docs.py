"""Docs freshness: every code block in the docs compiles, runs or lints.

Thin pytest wrapper over ``tools/docs_smoke.py`` so a stale doc fails
the tier-1 suite with the offending file:line in the test id.  Python
blocks whose first line is ``# doc: no-run`` only have their imports
executed (dead names still fail); all other python blocks run in full.
Shell blocks (```bash / ```sh / ```console) are linted: ``rcgp``
subcommands and flags must exist on the real CLI surface, ``python -m``
modules must import, and ``curl`` examples must hit real service
routes.
"""

import os
import sys

import pytest

TOOLS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools")
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)

from docs_smoke import (DocBlock, ShellBlock, check_shell_block,  # noqa: E402
                        check_shell_command, extract_blocks, iter_blocks,
                        iter_shell_blocks, run_block, shell_commands)

BLOCKS = iter_blocks()
SHELL_BLOCKS = iter_shell_blocks()


def test_docs_have_python_blocks():
    # The doc set is part of the deliverable — if extraction finds
    # nothing, the scanner (or the docs) broke.
    assert len(BLOCKS) >= 5
    paths = {block.path for block in BLOCKS}
    assert "README.md" in paths
    assert any(p.startswith("docs" + os.sep) or p.startswith("docs/") for p in paths)


def test_some_blocks_actually_execute():
    # The no-run escape hatch must stay the exception, not the rule.
    runnable = [b for b in BLOCKS if not b.no_run]
    assert len(runnable) >= 3


@pytest.mark.parametrize(
    "block", BLOCKS, ids=[f"{b.path}:{b.lineno}" for b in BLOCKS]
)
def test_doc_block(block):
    run_block(block)


def test_dead_import_fails_even_in_no_run_block():
    block = DocBlock("synthetic.md", 1,
                     "# doc: no-run\nfrom repro import NoSuchName\n")
    with pytest.raises(ImportError):
        run_block(block)


def test_syntax_error_fails_even_in_no_run_block():
    block = DocBlock("synthetic.md", 1, "# doc: no-run\ndef broken(:\n")
    with pytest.raises(SyntaxError):
        run_block(block)


def test_unterminated_fence_is_an_error(tmp_path):
    import docs_smoke

    bad = tmp_path / "bad.md"
    bad.write_text("```python\nx = 1\n")
    original = docs_smoke.REPO_ROOT
    docs_smoke.REPO_ROOT = str(tmp_path)
    try:
        with pytest.raises(ValueError, match="unterminated"):
            list(extract_blocks("bad.md"))
    finally:
        docs_smoke.REPO_ROOT = original


# ----------------------------------------------------------------------
# Shell-block linting


def test_docs_have_shell_blocks():
    # The CLI/service docs ship curl + rcgp examples; if the scanner
    # finds none, it (or the docs) broke.
    assert len(SHELL_BLOCKS) >= 3


@pytest.mark.parametrize(
    "block", SHELL_BLOCKS,
    ids=[f"{b.path}:{b.lineno}" for b in SHELL_BLOCKS]
)
def test_shell_block(block):
    assert check_shell_block(block) == []


def test_unknown_rcgp_subcommand_is_caught():
    assert any("unknown subcommand" in p
               for p in check_shell_command("rcgp fly --fast"))


def test_unknown_rcgp_flag_is_caught():
    problems = check_shell_command("rcgp serve --no-such-flag 1")
    assert any("unknown flag '--no-such-flag'" in p for p in problems)


def test_real_rcgp_command_passes():
    assert check_shell_command(
        "rcgp serve --store runs/ --port 8787 --workers 4") == []
    assert check_shell_command(
        "rcgp bench decoder_2_4 --generations 1000 --seed 7") == []


def test_rcgp_checked_behind_keywords_env_and_pipes(tmp_path):
    assert check_shell_command(
        "PYTHONPATH=src rcgp list | head -5") == []
    problems = check_shell_command(
        "if true; then rcgp serve --bogus; fi")
    assert any("unknown flag '--bogus'" in p for p in problems)


def test_python_module_existence_is_checked():
    assert check_shell_command("python -m repro.cli list") == []
    assert any("not importable" in p for p in
               check_shell_command("python -m repro.no_such_module"))
    assert any("no such file" in p for p in
               check_shell_command("python tools/not_there.py"))


def test_curl_routes_are_checked():
    assert check_shell_command(
        "curl http://127.0.0.1:8787/healthz") == []
    assert check_shell_command(
        "curl -X POST -d @job.json http://127.0.0.1:8787/v1/jobs") == []
    assert check_shell_command(
        "curl http://127.0.0.1:8787/v1/jobs/$JOB_ID/result") == []
    assert any("not a service endpoint" in p for p in
               check_shell_command("curl http://127.0.0.1:8787/v1/nope"))
    # -d implies POST: GET /v1/jobs/{id} exists but POST does not.
    assert any("not a service endpoint" in p for p in check_shell_command(
        "curl -d '{}' http://127.0.0.1:8787/v1/jobs/$JOB_ID"))


def test_unknown_command_word_is_caught():
    assert any("unknown command" in p
               for p in check_shell_command("frobnicate --now"))


def test_console_blocks_lint_only_prompt_lines():
    block = ShellBlock("synthetic.md", 1, "console",
                       "$ rcgp list\nsome output: frobnicate --now\n")
    assert shell_commands(block) == [(2, "rcgp list")]
    assert check_shell_block(block) == []


def test_heredoc_bodies_are_not_linted():
    block = ShellBlock("synthetic.md", 1, "bash",
                       "python - <<EOF\nnot shell at all\nEOF\n")
    assert check_shell_block(block) == []


def test_no_lint_marker_skips_block():
    block = ShellBlock("synthetic.md", 1, "bash",
                       "# doc: no-lint\nfrobnicate --now\n")
    assert check_shell_block(block) == []
