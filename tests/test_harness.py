"""Unit tests for the experiment harness (table runners + reporting)."""

import pytest

from repro.bench.registry import get_benchmark
from repro.harness.report import (
    aggregates,
    compare_with_paper,
    format_rows,
    paper_aggregates,
)
from repro.harness.runner import ExperimentRow, HarnessConfig, run_benchmark
from repro.rqfp.metrics import CircuitCost


def _tiny_config(**kw):
    defaults = dict(generations=150, mutation_rate=0.1, seed=1,
                    exact_conflict_budget=3000, exact_time_budget=5.0,
                    exact_max_gates=3, run_exact=False)
    defaults.update(kw)
    return HarnessConfig(**defaults)


class TestRunBenchmark:
    def test_decoder_row(self):
        row = run_benchmark(get_benchmark("decoder_2_4"), _tiny_config())
        assert row.name == "decoder_2_4"
        assert row.n_pi == 2 and row.n_po == 4 and row.g_lb == 0
        assert row.rcgp.n_r <= row.init.n_r
        assert row.exact is None and not row.exact_timeout

    def test_exact_timeout_recorded(self):
        config = _tiny_config(run_exact=True, exact_conflict_budget=20,
                              exact_max_gates=2)
        row = run_benchmark(get_benchmark("decoder_2_4"), config)
        assert row.exact is None
        assert row.exact_timeout

    def test_exact_success_recorded(self):
        config = _tiny_config(run_exact=True, exact_conflict_budget=100_000,
                              exact_max_gates=2, exact_time_budget=60.0)
        row = run_benchmark(get_benchmark("full_adder"), config)
        # Full adder may or may not complete in budget; both paths valid.
        assert row.exact_timeout == (row.exact is None)

    def test_as_dict(self):
        row = run_benchmark(get_benchmark("graycode4"), _tiny_config())
        data = row.as_dict()
        assert data["name"] == "graycode4"
        assert data["init"]["JJs"] == row.init.jjs


def _fake_row(name, init, rcgp, paper=None):
    return ExperimentRow(
        name=name, n_pi=2, n_po=2, g_lb=0,
        init=CircuitCost(*init),
        rcgp=CircuitCost(*rcgp),
        exact=None, exact_timeout=True,
        paper=paper or {},
    )


class TestAggregates:
    def test_reductions(self):
        rows = [
            _fake_row("a", (10, 4, 3, 8), (5, 2, 3, 2)),
            _fake_row("b", (20, 10, 4, 10), (10, 4, 4, 5)),
        ]
        agg = aggregates(rows)
        assert agg.gate_reduction == pytest.approx(0.5)
        assert agg.garbage_reduction == pytest.approx((0.75 + 0.5) / 2)
        assert agg.rows == 2

    def test_zero_baseline_skipped(self):
        rows = [_fake_row("a", (0, 0, 0, 0), (0, 0, 0, 0))]
        agg = aggregates(rows)
        assert agg.gate_reduction == 0.0

    def test_paper_aggregates_table1_headline(self):
        """Published Table 1 rows reduce gates ~50.8% / garbage ~71.6%."""
        from repro.bench.registry import table_benchmarks
        rows = []
        for benchmark in table_benchmarks(1):
            paper = benchmark.paper_row
            rows.append(ExperimentRow(
                name=benchmark.name, n_pi=0, n_po=0, g_lb=0,
                init=CircuitCost(0, 0, 0, 0), rcgp=CircuitCost(0, 0, 0, 0),
                exact=None, exact_timeout=False, paper=paper,
            ))
        # The paper states 50.80 % / 71.55 %; the scanned table rows give
        # 45.8 % / 68.7 % as a per-row mean and 50.0 % / 72.4 % as a
        # totals ratio, so the published aggregate sits between the two
        # conventions (plus scan noise).  Assert the right neighbourhood.
        agg = paper_aggregates(rows)
        assert agg.gate_reduction == pytest.approx(0.508, abs=0.06)
        assert agg.garbage_reduction == pytest.approx(0.7155, abs=0.06)

    def test_paper_aggregates_table2_headline(self):
        """Published Table 2 rows reduce gates ~32.4% / garbage ~59.1%."""
        from repro.bench.registry import table_benchmarks
        rows = []
        for benchmark in table_benchmarks(2):
            rows.append(ExperimentRow(
                name=benchmark.name, n_pi=0, n_po=0, g_lb=0,
                init=CircuitCost(0, 0, 0, 0), rcgp=CircuitCost(0, 0, 0, 0),
                exact=None, exact_timeout=True, paper=benchmark.paper_row,
            ))
        # Mean-of-per-row-ratios reproduces the published aggregate to
        # four digits — confirming both the aggregation convention and
        # our transcription of Table 2.
        agg = paper_aggregates(rows)
        assert agg.gate_reduction == pytest.approx(0.3238, abs=0.0001)
        assert agg.garbage_reduction == pytest.approx(0.5913, abs=0.0001)


class TestFormatting:
    def test_format_rows_renders_timeout_as_backslash(self):
        rows = [_fake_row("t", (3, 1, 2, 2), (2, 1, 2, 1))]
        text = format_rows(rows, title="demo")
        assert "demo" in text
        assert "\\" in text
        assert text.splitlines()[3].startswith("t")

    def test_compare_with_paper_contains_both(self):
        rows = [_fake_row("x", (4, 0, 1, 2), (2, 0, 1, 1),
                          paper={"init": {"n_r": 4, "n_g": 2, "JJs": 96},
                                 "rcgp": {"n_r": 2, "n_g": 1, "JJs": 48}})]
        text = compare_with_paper(rows)
        assert "measured" in text and "paper" in text


class TestHarnessConfig:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("RCGP_BENCH_GENERATIONS", "123")
        monkeypatch.setenv("RCGP_BENCH_RUN_EXACT", "0")
        config = HarnessConfig.from_env()
        assert config.generations == 123
        assert config.run_exact is False

    def test_rcgp_config_scaling(self):
        config = HarnessConfig(generations=1000)
        assert config.rcgp_config(0.5).generations == 500
        assert config.rcgp_config(0.0001).generations == 1


class TestTableMains:
    def test_table1_main_subset(self, capsys, monkeypatch):
        monkeypatch.setenv("RCGP_BENCH_GENERATIONS", "60")
        monkeypatch.setenv("RCGP_BENCH_RUN_EXACT", "0")
        from repro.harness.table1 import main
        assert main(["decoder_2_4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "decoder_2_4" in out

    def test_table2_main_subset(self, capsys, monkeypatch):
        monkeypatch.setenv("RCGP_BENCH_GENERATIONS", "60")
        monkeypatch.setenv("RCGP_BENCH_RUN_EXACT", "0")
        from repro.harness.table2 import main
        assert main(["graycode6"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "graycode6" in out
