"""Unit + property tests for transformation-based reversible synthesis."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.revlib import graycode, ham3, hwb, revlib_4_49
from repro.errors import SynthesisError
from repro.io.real import parse_real, write_real
from repro.reversible.synthesis import (
    synthesize_tables,
    transformation_synthesis,
)


class TestTransformationSynthesis:
    def test_identity_needs_no_gates(self):
        circuit = transformation_synthesis(list(range(8)), 3)
        assert circuit.gate_count() == 0
        assert circuit.permutation() == list(range(8))

    def test_single_not(self):
        perm = [1, 0]  # NOT on one wire
        circuit = transformation_synthesis(perm, 1)
        assert circuit.permutation() == perm
        assert circuit.gate_count() == 1

    def test_cnot_permutation(self):
        # x1 ^= x0: 00->00, 01->11, 10->10, 11->01.
        perm = [0, 3, 2, 1]
        circuit = transformation_synthesis(perm, 2)
        assert circuit.permutation() == perm

    def test_toffoli_permutation(self):
        perm = list(range(8))
        perm[3], perm[7] = 7, 3
        circuit = transformation_synthesis(perm, 3)
        assert circuit.permutation() == perm

    def test_random_permutations_3_wires(self, rng):
        for _ in range(30):
            perm = list(range(8))
            rng.shuffle(perm)
            circuit = transformation_synthesis(perm, 3)
            assert circuit.permutation() == perm

    def test_random_permutations_4_wires(self, rng):
        for _ in range(10):
            perm = list(range(16))
            rng.shuffle(perm)
            circuit = transformation_synthesis(perm, 4)
            assert circuit.permutation() == perm

    def test_unidirectional_also_correct(self, rng):
        for _ in range(10):
            perm = list(range(8))
            rng.shuffle(perm)
            circuit = transformation_synthesis(perm, 3, bidirectional=False)
            assert circuit.permutation() == perm

    def test_bidirectional_not_worse_on_average(self, rng):
        uni_total = bi_total = 0
        for _ in range(20):
            perm = list(range(16))
            rng.shuffle(perm)
            uni = transformation_synthesis(perm, 4, bidirectional=False)
            bi = transformation_synthesis(perm, 4, bidirectional=True)
            assert bi.permutation() == uni.permutation() == perm
            uni_total += uni.quantum_cost()
            bi_total += bi.quantum_cost()
        assert bi_total <= uni_total

    def test_non_permutation_rejected(self):
        with pytest.raises(SynthesisError):
            transformation_synthesis([0, 0, 1, 1], 2)
        with pytest.raises(SynthesisError):
            transformation_synthesis([0, 1, 2], 2)


class TestSynthesizeTables:
    def test_benchmark_permutations(self):
        for tables, wires in ((ham3(), 3), (revlib_4_49(), 4),
                              (graycode(4), 4), (hwb(4), 4)):
            circuit = synthesize_tables(tables)
            assert circuit.num_wires == wires
            assert circuit.embedded_tables() == tables

    def test_real_round_trip(self):
        """Synthesized circuits survive .real serialization."""
        circuit = synthesize_tables(ham3(), name="ham3_mmd")
        again = parse_real(write_real(circuit))
        assert again.permutation() == circuit.permutation()

    def test_non_square_rejected(self):
        from repro.bench.revlib import full_adder
        with pytest.raises(SynthesisError):
            synthesize_tables(full_adder())

    def test_irreversible_square_rejected(self):
        from repro.logic.truth_table import TruthTable
        tables = [TruthTable.constant(False, 2), TruthTable.variable(0, 2)]
        with pytest.raises(SynthesisError):
            synthesize_tables(tables)


@settings(max_examples=40, deadline=None)
@given(st.permutations(list(range(8))))
def test_mmd_property(perm):
    circuit = transformation_synthesis(list(perm), 3)
    assert circuit.permutation() == list(perm)
    assert circuit.is_reversible()
