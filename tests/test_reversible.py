"""Unit tests for the reversible-circuit substrate (MCT/MCF)."""

import pytest

from repro.errors import NetlistError
from repro.logic.truth_table import TruthTable
from repro.reversible.circuit import ReversibleCircuit, permutation_tables
from repro.reversible.gates import Control, McfGate, MctGate
from repro.reversible.spec import bennett_embedding, minimum_garbage


class TestMctGate:
    def test_not_gate(self):
        gate = MctGate(target=0)
        assert gate.apply(0b0) == 0b1
        assert gate.apply(0b1) == 0b0

    def test_cnot(self):
        gate = MctGate(target=1, controls=(Control(0),))
        assert gate.apply(0b01) == 0b11
        assert gate.apply(0b00) == 0b00

    def test_toffoli(self):
        gate = MctGate(target=2, controls=(Control(0), Control(1)))
        assert gate.apply(0b011) == 0b111
        assert gate.apply(0b001) == 0b001

    def test_negative_control(self):
        gate = MctGate(target=1, controls=(Control(0, positive=False),))
        assert gate.apply(0b00) == 0b10
        assert gate.apply(0b01) == 0b01

    def test_self_inverse(self):
        gate = MctGate(target=2, controls=(Control(0), Control(1, False)))
        for state in range(8):
            assert gate.apply(gate.apply(state)) == state

    def test_target_as_control_rejected(self):
        with pytest.raises(ValueError):
            MctGate(target=0, controls=(Control(0),))

    def test_duplicate_control_rejected(self):
        with pytest.raises(ValueError):
            MctGate(target=2, controls=(Control(0), Control(0, False)))


class TestMcfGate:
    def test_plain_swap(self):
        gate = McfGate(0, 1)
        assert gate.apply(0b01) == 0b10
        assert gate.apply(0b11) == 0b11

    def test_controlled_swap(self):
        gate = McfGate(0, 1, controls=(Control(2),))
        assert gate.apply(0b101) == 0b110
        assert gate.apply(0b001) == 0b001

    def test_self_inverse(self):
        gate = McfGate(0, 2, controls=(Control(1),))
        for state in range(8):
            assert gate.apply(gate.apply(state)) == state

    def test_same_targets_rejected(self):
        with pytest.raises(ValueError):
            McfGate(1, 1)

    def test_target_as_control_rejected(self):
        with pytest.raises(ValueError):
            McfGate(0, 1, controls=(Control(1),))


class TestReversibleCircuit:
    def test_cascade_is_permutation(self, rng):
        circuit = ReversibleCircuit(4)
        for _ in range(12):
            wires = rng.sample(range(4), 3)
            circuit.add_mct([Control(wires[0]), Control(wires[1], False)],
                            wires[2])
        assert circuit.is_reversible()

    def test_inverse_composes_to_identity(self, rng):
        circuit = ReversibleCircuit(3)
        circuit.add_mct([Control(0)], 1)
        circuit.add_mcf([], 0, 2)
        circuit.add_mct([], 2)
        inverse = circuit.inverse()
        for state in range(8):
            assert inverse.apply(circuit.apply(state)) == state

    def test_gate_off_wires_rejected(self):
        circuit = ReversibleCircuit(2)
        with pytest.raises(NetlistError):
            circuit.add_mct([Control(5)], 0)

    def test_quantum_cost_table(self):
        circuit = ReversibleCircuit(4)
        circuit.add_mct([], 0)                              # NOT: 1
        circuit.add_mct([Control(0)], 1)                    # CNOT: 1
        circuit.add_mct([Control(0), Control(1)], 2)        # Toffoli: 5
        assert circuit.quantum_cost() == 7

    def test_permutation_tables(self):
        perm = [0, 2, 1, 3]  # swap states 1 and 2 (2-wire swap gate)
        tables = permutation_tables(perm, 2)
        assert tables[0] == TruthTable.from_values([0, 0, 1, 1])
        assert tables[1] == TruthTable.from_values([0, 1, 0, 1])

    def test_permutation_tables_rejects_bad(self):
        with pytest.raises(ValueError):
            permutation_tables([0, 0, 1, 1], 2)
        with pytest.raises(ValueError):
            permutation_tables([0, 1, 2], 2)


class TestSpecExtraction:
    def test_bennett_embedding_realizes_function(self, random_tables):
        tables = random_tables(3, 2)
        circuit = bennett_embedding(tables)
        assert circuit.is_reversible()
        extracted = circuit.embedded_tables()
        assert extracted == tables

    def test_bennett_shapes(self, random_tables):
        tables = random_tables(2, 3)
        circuit = bennett_embedding(tables)
        assert circuit.num_wires == 5
        assert circuit.real_inputs() == [0, 1]
        assert circuit.real_outputs() == [2, 3, 4]

    def test_minimum_garbage_of_constant(self):
        """A constant output maps all 2^n inputs to one image:
        needs n garbage bits."""
        tables = [TruthTable.constant(True, 3)]
        assert minimum_garbage(tables) == 3

    def test_minimum_garbage_of_permutation(self):
        from repro.bench.revlib import graycode
        assert minimum_garbage(graycode(4)) == 0

    def test_minimum_garbage_of_and(self):
        """AND has multiplicity 3 on output 0 -> ceil(log2 3) = 2."""
        tables = [TruthTable.from_function(lambda a, b: a & b, 2)]
        assert minimum_garbage(tables) == 2
