"""Unit tests for the (1+λ) evolution strategy and full synthesis flow."""

import pytest

from repro.core.config import RcgpConfig
from repro.core.evolution import evolve
from repro.core.synthesis import (
    baseline_initialization,
    initialize_netlist,
    rcgp_synthesize,
)
from repro.errors import SynthesisError
from repro.logic.truth_table import TruthTable, tabulate_word
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


def _decoder_spec():
    return tabulate_word(lambda x: 1 << x, 2, 4)


def _xor_spec():
    return [TruthTable.from_function(lambda a, b: a ^ b, 2)]


class TestInitialization:
    def test_initial_netlist_is_legal_and_correct(self):
        spec = _decoder_spec()
        netlist = initialize_netlist(spec, "decoder")
        netlist.validate(require_single_fanout=True)
        assert netlist.to_truth_tables() == spec

    def test_baseline_costs_populated(self):
        result = baseline_initialization(_decoder_spec())
        assert result.cost.n_r == result.netlist.num_gates
        assert result.cost.n_d == result.plan.depth
        assert result.cost.jjs == 24 * result.cost.n_r + 4 * result.cost.n_b


class TestEvolve:
    def test_improves_or_holds_decoder(self):
        spec = _decoder_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=400, mutation_rate=0.08, seed=11,
                            offspring=4, shrink="always")
        result = evolve(initial, spec, config)
        assert result.fitness.functional
        assert result.fitness.n_r <= result.initial_fitness.n_r
        assert result.netlist.to_truth_tables() == spec
        result.netlist.validate(require_single_fanout=True)

    def test_rejects_wrong_initial(self):
        netlist = RqfpNetlist(2)
        netlist.add_output(1)
        with pytest.raises(SynthesisError):
            evolve(netlist, _decoder_spec()[:1], RcgpConfig(generations=1))

    def test_zero_generations_returns_initial(self):
        spec = _xor_spec()
        initial = initialize_netlist(spec)
        result = evolve(initial, spec, RcgpConfig(generations=0, seed=1))
        assert result.generations == 0
        assert result.fitness.functional

    def test_time_budget_respected(self):
        spec = _decoder_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=10 ** 9, time_budget=0.5, seed=2)
        result = evolve(initial, spec, config)
        assert result.runtime < 5.0

    def test_stagnation_stops_early(self):
        spec = _xor_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=100_000, stagnation_limit=50, seed=3)
        result = evolve(initial, spec, config)
        assert result.generations < 100_000

    def test_history_tracked(self):
        spec = _decoder_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=300, seed=4, track_history=True,
                            mutation_rate=0.1)
        result = evolve(initial, spec, config)
        assert result.history[0][0] == 0
        # History fitness keys must be monotonically non-decreasing.
        keys = [f.key() for _, f in result.history]
        assert keys == sorted(keys)

    def test_progress_callback_fires_on_improvement(self):
        spec = _decoder_spec()
        initial = initialize_netlist(spec)
        events = []
        config = RcgpConfig(generations=400, seed=5, mutation_rate=0.1,
                            shrink="always")
        evolve(initial, spec, config, progress=lambda g, f: events.append(g))
        # Improvements are likely but not guaranteed: only check types.
        assert all(isinstance(g, int) for g in events)

    def test_never_shrinking_mode_keeps_gate_slots(self):
        spec = _xor_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=50, seed=6, shrink="never")
        result = evolve(initial, spec, config)
        assert result.fitness.functional


class TestRcgpSynthesize:
    def test_end_to_end_decoder(self):
        config = RcgpConfig(generations=500, mutation_rate=0.1, seed=7,
                            shrink="always")
        result = rcgp_synthesize(_decoder_spec(), config, name="decoder_2_4")
        assert result.verify()
        assert result.cost.n_r <= result.initial.cost.n_r
        assert result.cost.n_g <= result.initial.cost.n_g
        assert result.cost.jjs == 24 * result.cost.n_r + 4 * result.cost.n_b

    def test_supplied_initial_netlist(self):
        spec = _xor_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=20, seed=8)
        result = rcgp_synthesize(spec, config, initial=initial)
        assert result.verify()

    def test_gate_reduction_property(self):
        config = RcgpConfig(generations=300, mutation_rate=0.1, seed=9,
                            shrink="always")
        result = rcgp_synthesize(_decoder_spec(), config)
        reduction = result.evolution.gate_reduction
        assert 0.0 <= reduction <= 1.0
