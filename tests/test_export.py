"""Unit tests for experiment export (JSON / Markdown)."""

import json

import pytest

from repro.harness.export import load_rows_json, rows_to_json, rows_to_markdown
from repro.harness.runner import ExperimentRow, HarnessConfig
from repro.rqfp.metrics import CircuitCost


def _row(name="demo", exact=None):
    return ExperimentRow(
        name=name, n_pi=2, n_po=4, g_lb=0,
        init=CircuitCost(5, 3, 3, 6, 0.1),
        rcgp=CircuitCost(4, 2, 3, 2, 1.5),
        exact=exact, exact_timeout=exact is None,
        paper={"init": {"n_r": 8, "n_g": 10, "JJs": 204},
               "rcgp": {"n_r": 3, "n_g": 1, "JJs": 84}},
    )


class TestJson:
    def test_round_trip(self):
        config = HarnessConfig(generations=100, seed=7)
        text = rows_to_json([_row()], config, label="unit")
        document = load_rows_json(text)
        assert document["label"] == "unit"
        assert document["budgets"]["generations"] == 100
        assert document["rows"][0]["name"] == "demo"
        assert document["rows"][0]["exact"] is None
        assert document["aggregates"]["gate_reduction"] == pytest.approx(0.2)

    def test_exact_row_serialized(self):
        text = rows_to_json([_row(exact=CircuitCost(3, 3, 3, 1, 40.0))])
        document = load_rows_json(text)
        assert document["rows"][0]["exact"]["n_r"] == 3
        assert document["budgets"] is None

    def test_bad_document_rejected(self):
        with pytest.raises(ValueError):
            load_rows_json(json.dumps({"format": "other"}))


class TestMarkdown:
    def test_structure(self):
        text = rows_to_markdown([_row()], title="Demo Table")
        lines = text.splitlines()
        assert lines[0] == "### Demo Table"
        assert lines[2].startswith("| Testcase |")
        assert any("demo" in line for line in lines)
        assert any("\\" in line for line in lines)  # exact timeout cell
        assert "Measured:" in text and "Paper:" in text

    def test_without_exact_columns(self):
        text = rows_to_markdown([_row()], include_exact=False)
        assert "exact n_r" not in text

    def test_cell_counts_consistent(self):
        text = rows_to_markdown([_row(exact=CircuitCost(3, 3, 3, 1))])
        table_lines = [l for l in text.splitlines() if l.startswith("|")]
        header_cells = table_lines[0].count("|")
        for line in table_lines[1:]:
            assert line.count("|") == header_cells
