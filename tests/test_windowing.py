"""Unit tests for windowed RCGP optimization."""

import random

import pytest

from repro.core.config import RcgpConfig
from repro.core.synthesis import initialize_netlist
from repro.core.windowing import (
    analyze_window,
    extract_window,
    optimize_window,
    splice_window,
    windowed_optimize,
)
from repro.errors import NetlistError
from repro.logic.truth_table import tabulate_word
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


def _intdiv5_netlist():
    from repro.bench.reciprocal import intdiv
    return initialize_netlist(intdiv(5), "intdiv5")


class TestAnalyzeWindow:
    def test_boundary_ports(self):
        netlist = RqfpNetlist(2)
        g0 = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
        g1 = netlist.add_gate(netlist.gate_output_port(g0, 0), CONST_PORT,
                              CONST_PORT, NORMAL_CONFIG)
        g2 = netlist.add_gate(netlist.gate_output_port(g1, 0),
                              netlist.gate_output_port(g0, 1),
                              CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g2, 0))
        window = analyze_window(netlist, 1, 2)  # just g1
        assert window.input_ports == [netlist.gate_output_port(g0, 0)]
        assert window.output_ports == [netlist.gate_output_port(g1, 0)]

    def test_po_counts_as_window_output(self):
        netlist = RqfpNetlist(1)
        g0 = netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g0, 1))
        window = analyze_window(netlist, 0, 1)
        assert window.output_ports == [netlist.gate_output_port(g0, 1)]

    def test_invalid_range_rejected(self):
        netlist = RqfpNetlist(1)
        netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        with pytest.raises(NetlistError):
            analyze_window(netlist, 0, 2)
        with pytest.raises(NetlistError):
            analyze_window(netlist, 1, 1)


class TestExtractSplice:
    def test_identity_splice_preserves_function(self, rng):
        """Extracting a window and splicing it back unchanged is a no-op
        functionally, for arbitrary windows of a real netlist."""
        netlist = _intdiv5_netlist()
        tables = netlist.to_truth_tables()
        for _ in range(8):
            start = rng.randrange(netlist.num_gates - 1)
            stop = min(start + rng.randint(1, 10), netlist.num_gates)
            window = analyze_window(netlist, start, stop)
            sub = extract_window(netlist, window)
            assert sub.num_gates == window.num_gates
            spliced = splice_window(netlist, window, sub)
            assert spliced.num_gates == netlist.num_gates
            assert spliced.to_truth_tables() == tables

    def test_extracted_window_realizes_local_function(self):
        netlist = _intdiv5_netlist()
        window = analyze_window(netlist, 2, 8)
        sub = extract_window(netlist, window)
        sub.validate(require_single_fanout=False)
        assert sub.num_inputs == len(window.input_ports)
        assert sub.num_outputs == len(window.output_ports)

    def test_splice_arity_checks(self):
        netlist = _intdiv5_netlist()
        window = analyze_window(netlist, 0, 3)
        wrong = RqfpNetlist(99)
        with pytest.raises(NetlistError):
            splice_window(netlist, window, wrong)

    def test_splice_with_smaller_window_shifts_suffix(self):
        """Replacing a 2-gate window by 1 gate must re-index the suffix."""
        netlist = RqfpNetlist(1)
        g0 = netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        g1 = netlist.add_gate(netlist.gate_output_port(g0, 0), CONST_PORT,
                              CONST_PORT, NORMAL_CONFIG)
        g2 = netlist.add_gate(netlist.gate_output_port(g1, 0), CONST_PORT,
                              CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g2, 0))
        window = analyze_window(netlist, 0, 2)
        # The two-gate window computes some f(x); build a replacement with
        # one gate only if it is functionally identical — here we simply
        # reuse the extract of a *one*-gate window... instead construct a
        # single-gate replacement realizing the same local function by
        # brute force over configs.
        sub = extract_window(netlist, window)
        spec = sub.to_truth_tables()
        replacement = None
        for config in range(512):
            cand = RqfpNetlist(1)
            cand.add_gate(1, CONST_PORT, CONST_PORT, config)
            for m in range(3):
                cand2 = cand.copy()
                cand2.add_output(cand2.gate_output_port(0, m))
                if cand2.to_truth_tables() == spec:
                    replacement = cand2
                    break
            if replacement:
                break
        assert replacement is not None, "chain of unary gates must collapse"
        spliced = splice_window(netlist, window, replacement)
        assert spliced.num_gates == 2
        assert spliced.to_truth_tables() == netlist.to_truth_tables()


class TestOptimizeWindow:
    def test_returns_none_for_dead_window(self):
        netlist = RqfpNetlist(1)
        netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)  # dead
        g1 = netlist.add_gate(CONST_PORT, CONST_PORT, CONST_PORT,
                              NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g1, 0))
        assert optimize_window(netlist, 0, 1) is None

    def test_respects_max_inputs(self):
        netlist = _intdiv5_netlist()
        window = analyze_window(netlist, 0, netlist.num_gates)
        wide = len(window.input_ports)
        assert optimize_window(netlist, 0, netlist.num_gates,
                               max_inputs=wide - 1) is None


class TestWindowedOptimize:
    def test_function_preserved_and_not_worse(self):
        netlist = _intdiv5_netlist()
        tables = netlist.to_truth_tables()
        config = RcgpConfig(generations=150, mutation_rate=1.0,
                            max_mutated_genes=4, seed=3, shrink="always")
        result = windowed_optimize(netlist, window_gates=10, rounds=1,
                                   config=config, seed=1)
        assert result.netlist.to_truth_tables() == tables
        assert result.gates_after <= result.gates_before
        assert result.garbage_after <= result.garbage_before
        assert result.windows_tried >= 1

    @pytest.mark.slow
    def test_windowing_actually_improves_intdiv5(self):
        netlist = _intdiv5_netlist()
        config = RcgpConfig(generations=800, mutation_rate=1.0,
                            max_mutated_genes=4, seed=5, shrink="always")
        result = windowed_optimize(netlist, window_gates=12, rounds=2,
                                   config=config, seed=2)
        assert (result.gates_after, result.garbage_after) < \
            (result.gates_before, result.garbage_before)
