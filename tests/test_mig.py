"""Unit tests for the MIG network."""

import pytest

from repro.errors import NetlistError
from repro.logic.truth_table import TruthTable
from repro.networks.aig import CONST0, CONST1, lit, lit_not
from repro.networks.mig import Mig


class TestMajAxioms:
    def test_duplicate_children_collapse(self):
        mig = Mig(2)
        a, b = (lit(n) for n in mig.inputs)
        assert mig.add_maj(a, a, b) == a
        assert mig.add_maj(b, a, b) == b
        assert mig.size() == 0

    def test_complement_pair_collapses(self):
        mig = Mig(2)
        a, b = (lit(n) for n in mig.inputs)
        assert mig.add_maj(a, lit_not(a), b) == b

    def test_and_or_via_constants(self):
        mig = Mig(2)
        a, b = (lit(n) for n in mig.inputs)
        mig.add_output(mig.add_and(a, b))
        mig.add_output(mig.add_or(a, b))
        tts = mig.to_truth_tables()
        assert tts[0] == TruthTable.from_function(lambda x, y: x & y, 2)
        assert tts[1] == TruthTable.from_function(lambda x, y: x | y, 2)

    def test_self_duality_canonicalization(self):
        """M(!a,!b,!c) must hash to the same node as !M(a,b,c)."""
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        plain = mig.add_maj(a, b, c)
        dual = mig.add_maj(lit_not(a), lit_not(b), lit_not(c))
        assert dual == lit_not(plain)
        assert mig.size() == 0  # no outputs yet -> reachable count is 0
        assert mig.num_nodes == 5  # const + 3 PIs + 1 majority

    def test_structural_hashing_commutative(self):
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        assert mig.add_maj(a, b, c) == mig.add_maj(c, a, b)

    def test_find_maj(self):
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        assert mig.find_maj(a, b, c) is None
        node = mig.add_maj(a, b, c)
        assert mig.find_maj(b, c, a) == node
        assert mig.find_maj(lit_not(a), lit_not(b), lit_not(c)) == lit_not(node)


class TestStructure:
    def _chain(self):
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        m1 = mig.add_maj(a, b, c)
        m2 = mig.add_maj(m1, a, CONST1)
        mig.add_output(m2)
        return mig

    def test_levels_depth(self):
        mig = self._chain()
        assert mig.depth() == 2

    def test_children_query(self):
        mig = self._chain()
        majs = mig.reachable_majs()
        assert len(majs) == 2
        kids = mig.children(majs[0])
        assert len(kids) == 3

    def test_children_of_input_rejected(self):
        mig = Mig(1)
        with pytest.raises(NetlistError):
            mig.children(mig.inputs[0])

    def test_cleanup_preserves_function(self, rng):
        mig = Mig(3)
        pool = [lit(n) for n in mig.inputs] + [CONST0, CONST1]
        for _ in range(15):
            kids = [rng.choice(pool) ^ (rng.random() < 0.5) for _ in range(3)]
            pool.append(mig.add_maj(*kids))
        mig.add_output(pool[-1])
        clean = mig.cleanup()
        assert clean.to_truth_tables() == mig.to_truth_tables()
        assert clean.size() <= mig.size()

    def test_fanout_counts(self):
        mig = Mig(2)
        a, b = (lit(n) for n in mig.inputs)
        m = mig.add_and(a, b)
        mig.add_output(m)
        mig.add_output(m)
        counts = mig.fanout_counts()
        from repro.networks.aig import lit_node
        assert counts[lit_node(m)] == 2


class TestSemantics:
    def test_simulation_matches_tables(self, rng):
        from repro.bench.random_circuits import random_mig
        for _ in range(10):
            mig = random_mig(4, 12, 2, rng)
            tts = mig.to_truth_tables()
            for t in range(16):
                words = [(t >> i) & 1 for i in range(4)]
                got = mig.simulate(words, 1)
                assert got == [tt.value(t) for tt in tts]

    def test_to_cnf_equivalence(self, random_tables):
        from repro.networks.convert import tables_to_mig
        from repro.sat.equivalence import check_against_tables
        tables = random_tables(4, 2)
        mig = tables_to_mig(tables)
        assert check_against_tables(mig.encoder(), tables).equivalent is True
