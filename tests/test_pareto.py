"""Unit tests for the multi-objective Pareto extension."""

import pytest

from repro.core.config import RcgpConfig
from repro.core.pareto import ParetoArchive, dominates, evolve_pareto
from repro.core.synthesis import initialize_netlist
from repro.errors import SynthesisError
from repro.logic.truth_table import tabulate_word
from repro.rqfp.netlist import RqfpNetlist


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1, 1), (2, 2, 2))
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_equal_does_not_dominate(self):
        assert not dominates((1, 1, 1), (1, 1, 1))

    def test_incomparable(self):
        assert not dominates((1, 3, 1), (2, 2, 2))
        assert not dominates((2, 2, 2), (1, 3, 1))


class TestArchive:
    def _netlist(self):
        return RqfpNetlist(1)

    def test_insert_and_evict(self):
        archive = ParetoArchive()
        assert archive.try_insert((5, 5, 5), self._netlist())
        assert archive.try_insert((3, 6, 6), self._netlist())  # incomparable
        assert len(archive) == 2
        # A dominator evicts both.
        assert archive.try_insert((3, 5, 5), self._netlist())
        assert archive.costs() == [(3, 5, 5)]

    def test_dominated_rejected(self):
        archive = ParetoArchive()
        archive.try_insert((3, 3, 3), self._netlist())
        assert not archive.try_insert((4, 4, 4), self._netlist())
        assert not archive.try_insert((3, 3, 3), self._netlist())

    def test_capacity_bound(self):
        archive = ParetoArchive(capacity=3)
        # Mutually incomparable points along a diagonal.
        for k in range(6):
            archive.try_insert((k, 10 - k, 5), self._netlist())
        assert len(archive) <= 3

    def test_best_by_weights(self):
        archive = ParetoArchive()
        archive.try_insert((3, 0, 10), self._netlist())
        archive.try_insert((4, 0, 1), self._netlist())
        jj_cost, _ = archive.best_by((24, 0, 4))
        assert jj_cost == (4, 0, 1)  # 100 JJs < 112 JJs
        gate_cost, _ = archive.best_by((1, 0, 0))
        assert gate_cost == (3, 0, 10)

    def test_empty_best_rejected(self):
        with pytest.raises(SynthesisError):
            ParetoArchive().best_by((1, 1, 1))


class TestEvolvePareto:
    def test_archive_members_all_functional(self):
        spec = tabulate_word(lambda x: 1 << x, 2, 4)
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=400, mutation_rate=0.1, seed=6,
                            shrink="always")
        archive = evolve_pareto(initial, spec, config)
        assert len(archive) >= 1
        for cost, netlist in archive.entries:
            assert netlist.to_truth_tables() == spec
            netlist.validate(require_single_fanout=True)

    def test_front_is_mutually_non_dominated(self):
        spec = tabulate_word(lambda x: 1 << x, 2, 4)
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=400, mutation_rate=0.1, seed=7,
                            shrink="always")
        archive = evolve_pareto(initial, spec, config)
        costs = archive.costs()
        for i, a in enumerate(costs):
            for j, b in enumerate(costs):
                if i != j:
                    assert not dominates(a, b) or a == b

    def test_wrong_initial_rejected(self):
        spec = tabulate_word(lambda x: 1 << x, 2, 4)
        wrong = RqfpNetlist(2)
        for _ in range(4):
            wrong.add_output(0)
        with pytest.raises(SynthesisError):
            evolve_pareto(wrong, spec, RcgpConfig(generations=1))
