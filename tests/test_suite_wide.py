"""Suite-wide integration: every registry benchmark's initialization is
legal, design-rule clean, and functionally exact."""

import pytest

from repro.bench.registry import BENCHMARKS, get_benchmark
from repro.core.synthesis import initialize_netlist
from repro.rqfp.buffers import schedule_levels
from repro.rqfp.metrics import circuit_cost
from repro.rqfp.validate import validate_circuit

_FAST_ROWS = [name for name, b in BENCHMARKS.items()
              if name not in ("hwb8",)]  # hwb8's init alone takes ~25 s


@pytest.mark.parametrize("name", _FAST_ROWS)
def test_initialization_is_exact_and_clean(name):
    benchmark = get_benchmark(name)
    spec = benchmark.spec()
    netlist = initialize_netlist(spec, name)
    # Function: exhaustively exact.
    assert netlist.to_truth_tables() == spec
    # Structure: single fan-out + balanced buffer plan.
    plan = validate_circuit(netlist)
    cost = circuit_cost(netlist, plan)
    # Cost-model invariants.
    assert cost.jjs == 24 * cost.n_r + 4 * cost.n_b
    assert cost.n_g >= benchmark.g_lb
    assert cost.n_d == netlist.depth()


@pytest.mark.slow
def test_hwb8_initialization():
    benchmark = get_benchmark("hwb8")
    spec = benchmark.spec()
    netlist = initialize_netlist(spec, "hwb8")
    assert netlist.to_truth_tables() == spec
    validate_circuit(netlist)
