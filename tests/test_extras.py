"""Unit tests for the extra benchmark families."""

import pytest

from repro.bench.extras import (
    EXTRA_BENCHMARKS,
    extra_spec,
    multiplier,
    one_hot_checker,
    parity,
    rd,
    rd53,
    ripple_adder,
    sym,
    sym6,
)
from repro.logic.bitops import popcount


class TestWeightFunctions:
    def test_rd53_counts_ones(self):
        spec = rd53()
        assert len(spec) == 3
        for x in range(32):
            got = sum(spec[i].value(x) << i for i in range(3))
            assert got == popcount(x)

    def test_rd_overflow_rejected(self):
        with pytest.raises(ValueError):
            rd(8, 3)  # weight 8 does not fit 3 bits


class TestSymmetric:
    def test_sym6_interval(self):
        spec = sym6()[0]
        for x in range(64):
            assert spec.value(x) == int(2 <= popcount(x) <= 4)

    def test_symmetry_property(self, rng):
        """A symmetric function is invariant under input permutation."""
        spec = sym(5, 1, 3)[0]
        for _ in range(20):
            x = rng.randrange(32)
            # Rotate the bits — weight preserved, value must match.
            rotated = ((x << 1) | (x >> 4)) & 31
            assert spec.value(x) == spec.value(rotated)

    def test_bad_thresholds(self):
        with pytest.raises(ValueError):
            sym(4, 3, 2)


class TestArithmetic:
    def test_adder_values(self):
        spec = ripple_adder(3)
        assert len(spec) == 4
        for x in range(64):
            a, b = x & 7, (x >> 3) & 7
            got = sum(spec[i].value(x) << i for i in range(4))
            assert got == a + b

    def test_multiplier_values(self):
        spec = multiplier(2)
        for x in range(16):
            a, b = x & 3, (x >> 2) & 3
            got = sum(spec[i].value(x) << i for i in range(4))
            assert got == a * b

    def test_parity(self):
        spec = parity(6)[0]
        for x in (0, 1, 0b111, 0b101010):
            assert spec.value(x) == popcount(x) % 2

    def test_one_hot(self):
        spec = one_hot_checker(4)[0]
        assert spec.value(0b0100) == 1
        assert spec.value(0b0110) == 0
        assert spec.value(0) == 0

    def test_bad_widths(self):
        with pytest.raises(ValueError):
            ripple_adder(0)
        with pytest.raises(ValueError):
            multiplier(0)


class TestRegistry:
    def test_all_extras_build(self):
        for name in EXTRA_BENCHMARKS:
            spec = extra_spec(name)
            assert spec and all(t.num_vars == spec[0].num_vars for t in spec)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            extra_spec("nope")

    def test_extras_synthesize(self):
        """A couple of extras run end-to-end through RCGP."""
        from repro.core import RcgpConfig, rcgp_synthesize
        for name in ("rd53", "adder2"):
            result = rcgp_synthesize(extra_spec(name),
                                     RcgpConfig(generations=80, seed=2,
                                                shrink="always"),
                                     name=name)
            assert result.verify()
