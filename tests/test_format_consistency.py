"""Cross-format consistency: every writer/reader pair agrees on semantics."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io.aiger import parse_aiger, parse_aiger_binary, write_aiger, write_aiger_binary
from repro.io.bench_format import parse_bench, write_bench
from repro.io.blif import parse_blif, write_blif
from repro.io.pla import parse_pla, write_pla
from repro.io.verilog import parse_verilog, write_verilog
from repro.logic.truth_table import TruthTable
from repro.networks.convert import tables_to_aig

_ROUND_TRIPS = [
    ("blif", lambda aig: parse_blif(write_blif(aig))),
    ("aag", lambda aig: parse_aiger(write_aiger(aig))),
    ("aig", lambda aig: parse_aiger_binary(write_aiger_binary(aig))),
    ("verilog", lambda aig: parse_verilog(write_verilog(aig))),
    ("bench", lambda aig: parse_bench(write_bench(aig))),
]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 4), st.integers(1, 3), st.integers(0, 2 ** 62))
def test_all_formats_agree(num_inputs, num_outputs, seed):
    import random
    rng = random.Random(seed)
    tables = [TruthTable(num_inputs, rng.getrandbits(1 << num_inputs))
              for _ in range(num_outputs)]
    aig = tables_to_aig(tables, name="xfmt")
    for label, round_trip in _ROUND_TRIPS:
        again = round_trip(aig)
        assert again.to_truth_tables() == tables, label
    # PLA round-trips at the truth-table level.
    parsed, _, _ = parse_pla(write_pla(tables))
    assert parsed == tables


@pytest.mark.parametrize("label,round_trip", _ROUND_TRIPS)
def test_edge_functions_survive_each_format(label, round_trip):
    edge_specs = [
        [TruthTable.constant(True, 2)],
        [TruthTable.constant(False, 2)],
        [TruthTable.variable(1, 3)],
        [~TruthTable.variable(0, 2)],
        [TruthTable.from_function(lambda a, b: a ^ b, 2),
         TruthTable.from_function(lambda a, b: 1 - (a & b), 2)],
    ]
    for tables in edge_specs:
        aig = tables_to_aig(tables)
        assert round_trip(aig).to_truth_tables() == tables, tables
