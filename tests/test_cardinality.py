"""Unit tests for cardinality-constraint encodings."""

import itertools

import pytest

from repro.sat.cardinality import (
    at_least_one,
    at_most_k_sequential,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_one,
)
from repro.sat.cnf import CNF
from repro.sat.solver import SAT, UNSAT, Solver


def _count_models(cnf: CNF, vars_of_interest):
    """Brute-force model count projected onto the given variables."""
    count = 0
    n = len(vars_of_interest)
    for pattern in range(1 << n):
        assignment = {v: bool((pattern >> i) & 1)
                      for i, v in enumerate(vars_of_interest)}
        # Extend with all assignments of auxiliaries.
        aux = [v for v in range(1, cnf.num_vars + 1)
               if v not in assignment]
        found = False
        for aux_pattern in range(1 << len(aux)):
            full = dict(assignment)
            for i, v in enumerate(aux):
                full[v] = bool((aux_pattern >> i) & 1)
            if cnf.evaluate(full):
                found = True
                break
        if found:
            count += 1
    return count


class TestAmoEncodings:
    @pytest.mark.parametrize("encoder", [at_most_one_pairwise,
                                         at_most_one_sequential])
    def test_allows_at_most_one(self, encoder):
        for n in range(1, 5):
            cnf = CNF()
            lits = cnf.new_vars(n)
            encoder(cnf, lits)
            # exactly n "one-hot or empty" assignments projected on lits
            assert _count_models(cnf, lits) == n + 1

    @pytest.mark.parametrize("encoder", [at_most_one_pairwise,
                                         at_most_one_sequential])
    def test_two_true_unsat(self, encoder):
        cnf = CNF()
        lits = cnf.new_vars(3)
        encoder(cnf, lits)
        cnf.add_clauses([[lits[0]], [lits[2]]])
        assert Solver(cnf).solve() == UNSAT


class TestExactlyOne:
    def test_model_count(self):
        cnf = CNF()
        lits = cnf.new_vars(4)
        exactly_one(cnf, lits)
        assert _count_models(cnf, lits) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            at_least_one(CNF(), [])


class TestAtMostK:
    @pytest.mark.parametrize("n,k", [(4, 2), (5, 3), (5, 1), (3, 0), (4, 4)])
    def test_model_counts(self, n, k):
        cnf = CNF()
        lits = cnf.new_vars(n)
        at_most_k_sequential(cnf, lits, k)
        expected = sum(
            1 for pattern in range(1 << n)
            if bin(pattern).count("1") <= k
        )
        assert _count_models(cnf, lits) == expected

    def test_k_boundary_sat_and_unsat(self):
        cnf = CNF()
        lits = cnf.new_vars(5)
        at_most_k_sequential(cnf, lits, 2)
        for lit in lits[:2]:
            cnf.add_clause([lit])
        assert Solver(cnf).solve() == SAT
        cnf.add_clause([lits[2]])
        assert Solver(cnf).solve() == UNSAT

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            at_most_k_sequential(CNF(), [], -1)
