"""Unit + randomized tests for the CDCL SAT solver."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF
from repro.sat.solver import SAT, UNKNOWN, UNSAT, Solver, luby, solve_cnf


class TestLuby:
    def test_prefix(self):
        want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(1, 16)] == want

    def test_one_based(self):
        with pytest.raises(ValueError):
            luby(0)

    def test_powers(self):
        assert luby((1 << 10) - 1) == 1 << 9


class TestBasics:
    def test_empty_formula_sat(self):
        assert Solver(CNF()).solve() == SAT

    def test_single_unit(self):
        cnf = CNF(1)
        cnf.add_clause([1])
        solver = Solver(cnf)
        assert solver.solve() == SAT
        assert solver.model()[1] is True

    def test_contradictory_units(self):
        cnf = CNF(1)
        cnf.add_clauses([[1], [-1]])
        assert Solver(cnf).solve() == UNSAT

    def test_simple_implication_chain(self):
        cnf = CNF(4)
        cnf.add_clauses([[1], [-1, 2], [-2, 3], [-3, 4]])
        solver = Solver(cnf)
        assert solver.solve() == SAT
        model = solver.model()
        assert all(model[v] for v in (1, 2, 3, 4))

    def test_pigeonhole_3_into_2_unsat(self):
        # p[i][j]: pigeon i in hole j; vars 1..6.
        def var(i, j):
            return 1 + i * 2 + j
        cnf = CNF(6)
        for i in range(3):
            cnf.add_clause([var(i, 0), var(i, 1)])
        for j in range(2):
            for i in range(3):
                for k in range(i + 1, 3):
                    cnf.add_clause([-var(i, j), -var(k, j)])
        assert Solver(cnf).solve() == UNSAT

    def test_php_5_4_unsat(self):
        """A harder pigeonhole instance exercising restarts/learning."""
        holes, pigeons = 4, 5

        def var(i, j):
            return 1 + i * holes + j
        cnf = CNF(pigeons * holes)
        for i in range(pigeons):
            cnf.add_clause([var(i, j) for j in range(holes)])
        for j in range(holes):
            for i in range(pigeons):
                for k in range(i + 1, pigeons):
                    cnf.add_clause([-var(i, j), -var(k, j)])
        assert Solver(cnf).solve() == UNSAT


class TestAssumptions:
    def test_assumption_forces_value(self):
        cnf = CNF(2)
        cnf.add_clause([1, 2])
        solver = Solver(cnf)
        assert solver.solve(assumptions=[-1]) == SAT
        assert solver.model()[2] is True

    def test_conflicting_assumptions(self):
        cnf = CNF(2)
        cnf.add_clause([-1, 2])
        solver = Solver(cnf)
        assert solver.solve(assumptions=[1, -2]) == UNSAT

    def test_solver_reusable_after_assumption_unsat(self):
        cnf = CNF(2)
        cnf.add_clause([-1, 2])
        solver = Solver(cnf)
        assert solver.solve(assumptions=[1, -2]) == UNSAT
        assert solver.solve() == SAT
        assert solver.solve(assumptions=[1]) == SAT
        assert solver.model()[2] is True


class TestBudgets:
    def test_conflict_budget_unknown(self):
        """A hard PHP instance must hit a tiny conflict budget."""
        holes, pigeons = 5, 6

        def var(i, j):
            return 1 + i * holes + j
        cnf = CNF(pigeons * holes)
        for i in range(pigeons):
            cnf.add_clause([var(i, j) for j in range(holes)])
        for j in range(holes):
            for i in range(pigeons):
                for k in range(i + 1, pigeons):
                    cnf.add_clause([-var(i, j), -var(k, j)])
        solver = Solver(cnf)
        assert solver.solve(conflict_budget=5) == UNKNOWN

    def test_budget_then_full_solve(self):
        cnf = CNF(3)
        cnf.add_clauses([[1, 2], [-1, 3], [-2, -3], [1, -3]])
        solver = Solver(cnf)
        first = solver.solve(conflict_budget=0)
        assert first in (SAT, UNKNOWN)
        assert solver.solve() == SAT


class TestRandomized:
    def test_agrees_with_brute_force(self, rng):
        for trial in range(250):
            nv = rng.randint(1, 8)
            nc = rng.randint(1, 36)
            cnf = CNF(nv)
            for _ in range(nc):
                width = rng.randint(1, 3)
                cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, nv)
                                for _ in range(width)])
            status, model = solve_cnf(cnf)
            brute = any(
                cnf.evaluate({v: bool((m >> (v - 1)) & 1)
                              for v in range(1, nv + 1)})
                for m in range(1 << nv)
            )
            assert (status == SAT) == brute, f"trial {trial}"
            if status == SAT:
                assert cnf.evaluate(model), f"trial {trial} model invalid"

    def test_learned_db_reduction_path(self, rng):
        """A larger random instance drives DB reduction and restarts."""
        nv, nc = 60, 250
        cnf = CNF(nv)
        for _ in range(nc):
            cnf.add_clause([rng.choice([1, -1]) * rng.randint(1, nv)
                            for _ in range(3)])
        solver = Solver(cnf)
        status = solver.solve()
        assert status in (SAT, UNSAT)
        if status == SAT:
            assert cnf.evaluate(solver.model())


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_solver_model_satisfies_formula(data):
    nv = data.draw(st.integers(1, 7))
    clauses = data.draw(st.lists(
        st.lists(st.integers(1, nv).flatmap(
            lambda v: st.sampled_from([v, -v])), min_size=1, max_size=4),
        max_size=25))
    cnf = CNF(nv)
    for clause in clauses:
        cnf.add_clause(clause)
    status, model = solve_cnf(cnf)
    if status == SAT:
        assert cnf.evaluate(model)
    else:
        assert not any(
            cnf.evaluate({v: bool((m >> (v - 1)) & 1)
                          for v in range(1, nv + 1)})
            for m in range(1 << nv)
        )
