"""Unit tests for the ASCII AIGER reader / writer."""

import pytest

from repro.errors import ParseError
from repro.io.aiger import parse_aiger, write_aiger
from repro.logic.truth_table import TruthTable
from repro.networks.convert import tables_to_aig

AND_AAG = """aag 3 2 0 1 1
2
4
6
6 2 4
i0 a
i1 b
o0 y
"""


class TestParse:
    def test_simple_and(self):
        aig = parse_aiger(AND_AAG)
        assert aig.num_inputs == 2
        assert aig.input_names == ["a", "b"]
        assert aig.output_names == ["y"]
        assert aig.to_truth_tables()[0] == TruthTable.from_function(
            lambda a, b: a & b, 2)

    def test_complemented_edges(self):
        text = "aag 3 2 0 1 1\n2\n4\n7\n6 3 5\n"  # y = !(!a & !b) = a|b
        aig = parse_aiger(text)
        assert aig.to_truth_tables()[0] == TruthTable.from_function(
            lambda a, b: a | b, 2)

    def test_constant_output(self):
        text = "aag 1 1 0 1 0\n2\n1\n"
        aig = parse_aiger(text)
        assert aig.to_truth_tables()[0] == TruthTable.constant(True, 1)

    def test_latches_rejected(self):
        with pytest.raises(ParseError):
            parse_aiger("aag 2 1 1 0 0\n2\n4 2\n")

    def test_bad_header_rejected(self):
        with pytest.raises(ParseError):
            parse_aiger("aig 1 1 0 0 0\n")
        with pytest.raises(ParseError):
            parse_aiger("")

    def test_non_canonical_input_rejected(self):
        with pytest.raises(ParseError):
            parse_aiger("aag 2 1 0 0 0\n4\n")

    def test_forward_reference_rejected(self):
        with pytest.raises(ParseError):
            parse_aiger("aag 3 1 0 1 1\n2\n6\n6 8 2\n")


class TestWrite:
    def test_round_trip_random(self, random_tables):
        for _ in range(5):
            tables = random_tables(4, 2)
            aig = tables_to_aig(tables, name="rt")
            again = parse_aiger(write_aiger(aig))
            assert again.to_truth_tables() == tables

    def test_round_trip_preserves_names(self):
        tables = [TruthTable.variable(0, 2)]
        aig = tables_to_aig(tables, input_names=["p", "q"],
                            output_names=["r"])
        again = parse_aiger(write_aiger(aig))
        assert again.input_names == ["p", "q"]
        assert again.output_names == ["r"]

    def test_header_counts(self):
        tables = [TruthTable.from_function(lambda a, b: a & b, 2)]
        text = write_aiger(tables_to_aig(tables))
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        m, i, l, o, a = map(int, header[1:])
        assert (i, l, o, a) == (2, 0, 1, 1)
        assert m == i + a


class TestBinaryAiger:
    def test_round_trip_random(self, random_tables):
        from repro.io.aiger import parse_aiger_binary, write_aiger_binary
        from repro.networks.convert import tables_to_aig
        for _ in range(5):
            tables = random_tables(4, 2)
            aig = tables_to_aig(tables, name="bin")
            again = parse_aiger_binary(write_aiger_binary(aig))
            assert again.to_truth_tables() == tables

    def test_ascii_binary_agree(self, random_tables):
        from repro.io.aiger import (parse_aiger, parse_aiger_binary,
                                    write_aiger, write_aiger_binary)
        from repro.networks.convert import tables_to_aig
        tables = random_tables(3, 3)
        aig = tables_to_aig(tables)
        a = parse_aiger(write_aiger(aig)).to_truth_tables()
        b = parse_aiger_binary(write_aiger_binary(aig)).to_truth_tables()
        assert a == b == tables

    def test_read_aiger_dispatches_on_magic(self, tmp_path, random_tables):
        from repro.io.aiger import read_aiger, write_aiger, write_aiger_binary
        from repro.networks.convert import tables_to_aig
        tables = random_tables(3, 1)
        aig = tables_to_aig(tables)
        ascii_path = tmp_path / "x.aag"
        ascii_path.write_text(write_aiger(aig))
        bin_path = tmp_path / "x.aig"
        bin_path.write_bytes(write_aiger_binary(aig))
        assert read_aiger(str(ascii_path)).to_truth_tables() == tables
        assert read_aiger(str(bin_path)).to_truth_tables() == tables

    def test_latches_rejected(self):
        from repro.errors import ParseError
        from repro.io.aiger import parse_aiger_binary
        with pytest.raises(ParseError):
            parse_aiger_binary(b"aig 2 1 1 0 0\n")

    def test_truncated_rejected(self):
        from repro.errors import ParseError
        from repro.io.aiger import parse_aiger_binary
        with pytest.raises(ParseError):
            parse_aiger_binary(b"aig 3 1 0 1 1\n2\n\x80")

    def test_names_preserved(self):
        from repro.io.aiger import parse_aiger_binary, write_aiger_binary
        from repro.logic.truth_table import TruthTable
        from repro.networks.convert import tables_to_aig
        aig = tables_to_aig([TruthTable.variable(0, 2)],
                            input_names=["p", "q"], output_names=["r"])
        again = parse_aiger_binary(write_aiger_binary(aig))
        assert again.input_names == ["p", "q"]
        assert again.output_names == ["r"]
