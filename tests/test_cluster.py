"""Distributed evaluation over TCP workers (`repro.cluster`).

The headline guarantee extends the pool suite's across machine
boundaries: **any worker mix — local pipes, remote TCP processes,
both at once, workers dying mid-span — produces results and eval
counters bit-identical to the serial loop.**  These tests run real
``run_worker`` processes over loopback sockets, inject real deaths
(``os._exit`` mid-evaluation, SIGKILL from outside) and check both the
recovered results and the typed failure surface of the frame protocol
and the registration handshake.
"""

import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro.cluster import (ClusterBackend, ClusterDispatch, ClusterFleet,
                           run_worker)
from repro.cluster import protocol
from repro.cluster.worker import parse_endpoint
from repro.core import transport, wire
from repro.core.config import RcgpConfig
from repro.core.engine import RECOVERABLE_POOL_ERRORS, EvolutionRun
from repro.errors import (ClusterAuthError, ClusterError,
                          ClusterVersionSkew, FrameError, FrameTooLarge,
                          FrameTruncated, UnknownOpcode, WorkerPoolError)
from repro.logic.truth_table import TruthTable

TOKEN = "test-cluster-token"

_SPAWN = multiprocessing.get_context("spawn")


def _spec():
    return [TruthTable.from_function(lambda a, b: a ^ b, 2),
            TruthTable.from_function(lambda a, b: a & b, 2)]


def _config(**overrides):
    # eval_cache_size=0 keeps the replay-span path eligible, so remote
    # runs exercise the pipelined span protocol and not just batches.
    base = dict(generations=300, seed=11, shrink="always", workers=0,
                eval_cache_size=0)
    base.update(overrides)
    return RcgpConfig(**base)


def _worker_main(port, token, name, env):
    if env:
        os.environ.update(env)
    run_worker(f"127.0.0.1:{port}", token, name=name)


def _spawn_worker(port, name, env=None, token=TOKEN):
    proc = _SPAWN.Process(target=_worker_main,
                          args=(port, token, name, env), daemon=True)
    proc.start()
    return proc


def _wait_live(fleet, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if fleet.live_count() >= count:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"fleet has {fleet.live_count()} live workers, wanted {count}")


def _run_cluster(spec, config, fleet, *, local_workers=0):
    """One EvolutionRun over a ClusterBackend; returns (run, dispatch,
    backend) with the dispatch closed."""
    dispatch = ClusterDispatch(fleet, local_workers=local_workers)
    ctx = ("test-job", tuple(t.bits for t in spec), spec[0].num_vars,
           config.to_dict())
    backend = ClusterBackend(dispatch, ctx, spec, config)
    try:
        run = EvolutionRun(spec, config, backend=backend).run()
    finally:
        dispatch.close()
    return run, dispatch, backend


def _assert_identical(run, serial):
    assert run.fitness.key() == serial.fitness.key()
    assert run.netlist.describe() == serial.netlist.describe()
    assert run.generations == serial.generations
    assert run.evaluations == serial.evaluations
    assert run.eval_full == serial.eval_full
    assert run.eval_incremental == serial.eval_incremental


# ----------------------------------------------------------------------
# Frame robustness (shared by pipe and TCP transports)


class TestFrameRobustness:
    def test_typed_errors_are_recoverable_pool_errors(self):
        for cls in (FrameError, FrameTruncated, FrameTooLarge,
                    UnknownOpcode):
            assert issubclass(cls, WorkerPoolError)
        assert FrameError in RECOVERABLE_POOL_ERRORS

    def test_empty_frame_truncated(self):
        with pytest.raises(FrameTruncated):
            transport.check_frame(b"")

    def test_oversized_frame_typed(self):
        with pytest.raises(FrameTooLarge):
            transport.check_frame(b"\x01" * 64, max_bytes=16)

    def test_frame_cap_env_override(self, monkeypatch):
        monkeypatch.setenv("RCGP_MAX_FRAME_BYTES", "4096")
        assert transport.max_frame_bytes() == 4096
        monkeypatch.delenv("RCGP_MAX_FRAME_BYTES")
        assert transport.max_frame_bytes() == \
            transport.DEFAULT_MAX_FRAME_BYTES

    def test_unknown_opcode_round_trips_typed(self):
        reply = transport.serve_frame(bytes([0x7F]))
        assert reply[0] == transport.OP_ERROR
        with pytest.raises(UnknownOpcode):
            transport.unwrap_reply(reply)

    def test_garbage_payload_round_trips_truncated(self):
        # Both the job-keyed and the bare opcodes convert struct-level
        # garbage into FrameTruncated — one recoverable retry, never a
        # crash of the serve loop.
        for opcode in (transport.OP_JOB_EVAL_GENOMES,
                       transport.OP_EVAL_GENOMES):
            reply = transport.serve_frame(bytes([opcode]) + b"\x01\x02")
            with pytest.raises(FrameTruncated):
                transport.unwrap_reply(reply)

    def test_wire_unpack_truncated_typed(self):
        for unpack in (wire.unpack_genomes, wire.unpack_deltas,
                       wire.unpack_fitness_chunk,
                       wire.unpack_span_result):
            with pytest.raises(FrameTruncated):
                unpack(memoryview(b"\x07"))

    def test_unexpected_reply_opcode_typed(self):
        with pytest.raises(UnknownOpcode):
            transport.unwrap_reply(bytes([transport.OP_PONG]))

    def test_ping_pong(self):
        reply = transport.serve_frame(bytes([transport.OP_PING]))
        assert reply == bytes([transport.OP_PONG])
        transport.unwrap_reply(reply, expect=transport.OP_PONG)

    def test_socket_channel_failure_mapping(self):
        left, right = socket.socketpair()
        a = protocol.SocketChannel(left)
        b = protocol.SocketChannel(right)
        try:
            # Oversized outgoing frames are refused before hitting the
            # wire; oversized incoming ones before buffering the body.
            small = protocol.SocketChannel(left, max_bytes=8)
            with pytest.raises(FrameTooLarge):
                small.send(b"\x01" * 64)
            a.send(b"\x01" * 64)
            with pytest.raises(FrameTooLarge):
                protocol.SocketChannel(right, max_bytes=8).recv(
                    time.monotonic() + 1.0)
        finally:
            a.close()
            b.close()

    def test_socket_channel_close_mid_frame_truncated(self):
        left, right = socket.socketpair()
        b = protocol.SocketChannel(right)
        try:
            # Length prefix promises 100 bytes; peer dies after 3.
            left.sendall(b"\x64\x00\x00\x00" + b"abc")
            left.close()
            with pytest.raises(FrameTruncated):
                b.recv(time.monotonic() + 1.0)
        finally:
            b.close()

    def test_socket_channel_clean_close_is_eof(self):
        left, right = socket.socketpair()
        b = protocol.SocketChannel(right)
        try:
            left.close()
            with pytest.raises(EOFError):
                b.recv(time.monotonic() + 1.0)
        finally:
            b.close()

    def test_socket_channel_deadline_is_timeout(self):
        left, right = socket.socketpair()
        b = protocol.SocketChannel(right)
        try:
            with pytest.raises(TimeoutError):
                b.recv(time.monotonic() + 0.05)
        finally:
            left.close()
            b.close()


# ----------------------------------------------------------------------
# Registration handshake


class TestHandshake:
    def test_bad_token_rejected_typed(self):
        with ClusterFleet(token=TOKEN) as fleet:
            with pytest.raises(ClusterAuthError):
                run_worker(f"127.0.0.1:{fleet.port}", "wrong-token",
                           once=True)
            deadline = time.monotonic() + 5.0
            while fleet.rejections_total == 0 and \
                    time.monotonic() < deadline:
                time.sleep(0.02)
            assert fleet.rejections_total == 1
            assert fleet.live_count() == 0

    def test_version_skew_rejected_typed(self):
        with ClusterFleet(token=TOKEN) as fleet:
            sock = socket.create_connection(("127.0.0.1", fleet.port),
                                            timeout=5.0)
            channel = protocol.SocketChannel(sock)
            try:
                channel.send(protocol._json_frame(protocol.OP_HELLO, {
                    "proto": 999, "token": TOKEN, "name": "skewed",
                    "slots": 1, "pid": os.getpid(), "host": "x",
                    "incarnation": 0}))
                reply = channel.recv(time.monotonic() + 5.0)
                with pytest.raises(ClusterVersionSkew):
                    protocol.parse_welcome(reply)
            finally:
                channel.close()
            assert fleet.live_count() == 0

    def test_empty_token_refused_both_sides(self):
        with pytest.raises(ValueError):
            ClusterFleet(token="")
        with pytest.raises(ClusterError):
            run_worker("127.0.0.1:1", "", once=True)

    def test_bad_endpoint_typed(self):
        for bad in ("nonsense", "host:", ":123", "host:port"):
            with pytest.raises(ClusterError):
                parse_endpoint(bad)
        assert parse_endpoint("10.0.0.1:8788") == ("10.0.0.1", 8788)


# ----------------------------------------------------------------------
# Determinism across worker mixes


class TestClusterDeterminism:
    def test_remote_and_mixed_identical_to_serial_and_pool(self):
        spec = _spec()
        config = _config()
        serial = EvolutionRun(spec, config).run()
        pool = EvolutionRun(spec, _config(workers=2)).run()
        _assert_identical(pool, serial)

        fleet = ClusterFleet(token=TOKEN, heartbeat=2.0).start()
        procs = [_spawn_worker(fleet.port, "det-w1"),
                 _spawn_worker(fleet.port, "det-w2")]
        try:
            _wait_live(fleet, 2)
            remote, r_dispatch, r_backend = _run_cluster(
                spec, config, fleet)
            mixed, m_dispatch, m_backend = _run_cluster(
                spec, config, fleet, local_workers=2)
        finally:
            fleet.close()
            for proc in procs:
                proc.terminate()
                proc.join(timeout=10)
        _assert_identical(remote, serial)
        _assert_identical(mixed, serial)
        # The remote run really rode the fleet.
        assert r_dispatch.spans_remote > 0
        assert r_backend.cluster_workers <= {"det-w1", "det-w2"}
        assert r_backend.cluster_workers
        assert r_backend.bytes_shipped > 0
        assert not r_backend.degraded
        assert not m_backend.degraded

    def test_empty_fleet_runs_inline_identical(self):
        spec = _spec()
        config = _config(generations=120)
        serial = EvolutionRun(spec, config).run()
        with ClusterFleet(token=TOKEN) as fleet:
            run, dispatch, backend = _run_cluster(spec, config, fleet)
        _assert_identical(run, serial)
        # Nobody connected is cluster weather, not machine breakage:
        # the slice inlines without flipping the degraded latch.
        assert not backend.degraded
        assert dispatch.last_failure == "no_channels"
        assert backend.cluster_workers == set()


# ----------------------------------------------------------------------
# Fault tolerance: dying workers never change results


class TestClusterFaultTolerance:
    def test_worker_death_mid_span_redispatches_bit_identical(self):
        spec = _spec()
        config = _config()
        serial = EvolutionRun(spec, config).run()
        fleet = ClusterFleet(token=TOKEN, heartbeat=0.5,
                             heartbeat_timeout=2.0).start()
        # Every worker hard-exits (os._exit, no cleanup — the same
        # syscall surface as SIGKILL) mid-evaluation after its 40th
        # eval; the serial run needs ~1200, so whoever serves spans
        # dies repeatedly and the coordinator must recover each time.
        env = {"RCGP_TEST_CRASH_AFTER_EVALS": "40"}
        procs = [_spawn_worker(fleet.port, "doomed-1", env=env),
                 _spawn_worker(fleet.port, "doomed-2", env=env)]
        try:
            _wait_live(fleet, 2)
            run, dispatch, backend = _run_cluster(spec, config, fleet)
        finally:
            fleet.close()
            for proc in procs:
                proc.terminate()
                proc.join(timeout=10)
        _assert_identical(run, serial)
        assert dispatch.batches_retried + dispatch.worker_restarts > 0

    def test_sigkill_one_worker_mid_run_bit_identical(self):
        spec = _spec()
        config = _config()
        serial = EvolutionRun(spec, config).run()
        fleet = ClusterFleet(token=TOKEN, heartbeat=0.5,
                             heartbeat_timeout=2.0).start()
        victim = _spawn_worker(fleet.port, "victim")
        survivor = _spawn_worker(fleet.port, "survivor")
        # SIGKILL lands whenever it lands — mid-span (the collect loop
        # re-dispatches to the survivor) or between spans (the
        # heartbeat drops the corpse); bit-identity must hold either
        # way.
        killer = threading.Timer(0.25, victim.kill)
        try:
            _wait_live(fleet, 2)
            killer.start()
            run, dispatch, backend = _run_cluster(spec, config, fleet)
        finally:
            killer.cancel()
            fleet.close()
            for proc in (victim, survivor):
                proc.terminate()
                proc.join(timeout=10)
        _assert_identical(run, serial)
        assert not backend.degraded


# ----------------------------------------------------------------------
# Service surface: /v1/workers, /metrics, scheduler integration


class TestServiceFleet:
    def test_workers_endpoint_and_metrics(self):
        from repro.service import ServiceClient, ServiceServer
        fleet = ClusterFleet(token=TOKEN, heartbeat=2.0).start()
        server = ServiceServer(None, port=0,
                               cluster=fleet).start(loop=False)
        proc = _spawn_worker(fleet.port, "svc-w1")
        try:
            _wait_live(fleet, 1)
            client = ServiceClient(server.url, timeout=10.0)
            view = client.workers()
            assert view["cluster"] is True
            assert view["live"] == 1
            assert view["workers"][0]["name"] == "svc-w1"
            assert view["workers"][0]["slots"] >= 1
            metrics = client.metrics()
            assert metrics["rcgp_cluster_workers_live"] == 1.0
            assert metrics["rcgp_cluster_spans_remote_total"] == 0.0
            assert metrics["rcgp_cluster_reconnects_total"] == 0.0
        finally:
            server.close()  # closes the attached fleet too
            proc.terminate()
            proc.join(timeout=10)

    def test_workers_endpoint_without_cluster(self):
        from repro.service import ServiceClient, ServiceServer
        with ServiceServer(None, port=0).start(loop=False) as server:
            client = ServiceClient(server.url, timeout=10.0)
            view = client.workers()
            assert view["cluster"] is False
            assert view["live"] == 0
            assert view["workers"] == []
            assert client.metrics()["rcgp_cluster_workers_live"] == 0.0

    def test_serve_requires_token_with_cluster_port(self):
        from repro.service.server import serve
        with pytest.raises(ValueError):
            serve(None, port=0, cluster_port=0)

    def test_session_with_fleet_bit_identical(self):
        from repro.api import Session, synthesize
        spec = _spec()
        config = _config(generations=150)
        baseline = synthesize(spec, config)
        fleet = ClusterFleet(token=TOKEN, heartbeat=2.0).start()
        proc = _spawn_worker(fleet.port, "sess-w1")
        try:
            _wait_live(fleet, 1)
            with Session(workers=0, fleet=fleet) as session:
                result = session.synthesize(spec, config)
        finally:
            fleet_spans = fleet.spans_remote_total
            fleet.close()
            proc.terminate()
            proc.join(timeout=10)
        assert result.evolution.fitness.key() == \
            baseline.evolution.fitness.key()
        assert result.evolution.evaluations == \
            baseline.evolution.evaluations
        assert result.netlist.describe() == baseline.netlist.describe()
        assert fleet_spans > 0


if __name__ == "__main__":  # pragma: no cover
    import sys
    sys.exit(pytest.main([__file__, "-v"]))
