"""Unit tests for the CEC miter machinery."""

import pytest

from repro.errors import VerificationError
from repro.logic.truth_table import TruthTable
from repro.networks.convert import tables_to_aig, tables_to_mig
from repro.sat.equivalence import (
    build_miter,
    check_against_tables,
    check_equivalence,
    truth_table_encoder,
)


class TestTruthTableEncoder:
    def test_spec_vs_itself(self, random_tables):
        tables = random_tables(3, 2)
        result = check_equivalence(truth_table_encoder(tables),
                                   truth_table_encoder(tables), 3)
        assert result.equivalent is True
        assert result.counterexample is None

    def test_detects_single_minterm_difference(self):
        a = [TruthTable(3, 0b10110100)]
        b = [TruthTable(3, 0b10110101)]  # differs at pattern 0
        result = check_equivalence(truth_table_encoder(a),
                                   truth_table_encoder(b), 3)
        assert result.equivalent is False
        assert result.counterexample == 0

    def test_counterexample_is_genuine(self, random_tables, rng):
        for _ in range(20):
            a = random_tables(4, 2)
            flipped = rng.randrange(16)
            b = [a[0], TruthTable(4, a[1].bits ^ (1 << flipped))]
            result = check_equivalence(truth_table_encoder(a),
                                       truth_table_encoder(b), 4)
            assert result.equivalent is False
            cex = result.counterexample
            assert any(t1.value(cex) != t2.value(cex)
                       for t1, t2 in zip(a, b))

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            truth_table_encoder([])

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            truth_table_encoder([TruthTable.variable(0, 2),
                                 TruthTable.variable(0, 3)])


class TestNetworkEquivalence:
    def test_aig_vs_spec(self, random_tables):
        tables = random_tables(4, 3)
        aig = tables_to_aig(tables)
        assert check_against_tables(aig.encoder(), tables).equivalent is True

    def test_mig_vs_aig(self, random_tables):
        tables = random_tables(4, 2)
        aig = tables_to_aig(tables)
        mig = tables_to_mig(tables)
        result = check_equivalence(aig.encoder(), mig.encoder(), 4)
        assert result.equivalent is True

    def test_output_arity_mismatch(self, random_tables):
        a = tables_to_aig(random_tables(3, 1))
        b = tables_to_aig(random_tables(3, 2))
        with pytest.raises(VerificationError):
            check_equivalence(a.encoder(), b.encoder(), 3)

    def test_budget_exhaustion_reports_undecided(self, random_tables):
        tables = random_tables(6, 4)
        aig = tables_to_aig(tables)
        result = check_against_tables(aig.encoder(), tables,
                                      conflict_budget=0)
        # Either it decided instantly via propagation or reports UNKNOWN.
        if not result.decided:
            assert result.equivalent is None


class TestBuildMiter:
    def test_miter_unsat_for_identical(self, random_tables):
        tables = random_tables(3, 2)
        enc = truth_table_encoder(tables)
        cnf, inputs, differ = build_miter(enc, enc, 3)
        assert len(inputs) == 3
        from repro.sat.solver import Solver, UNSAT
        assert Solver(cnf).solve() == UNSAT
