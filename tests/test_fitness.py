"""Unit tests for the two-phase fitness evaluation (§3.2.1)."""

import random

import pytest

from repro.core.config import RcgpConfig
from repro.core.fitness import Evaluator, Fitness
from repro.core.synthesis import initialize_netlist
from repro.logic.truth_table import TruthTable, tabulate_word
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


def _and_spec():
    return [TruthTable.from_function(lambda a, b: a & b, 2)]


def _and_netlist():
    netlist = RqfpNetlist(2)
    gate = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
    netlist.add_output(netlist.gate_output_port(gate, 2))
    return netlist


class TestFitnessOrdering:
    def test_success_dominates(self):
        good = Fitness(1.0, n_r=100, n_g=100, n_b=100)
        almost = Fitness(0.999, n_r=1, n_g=0, n_b=0)
        assert good > almost

    def test_lexicographic_priorities(self):
        """Gates first, then garbage, then buffers (paper's order)."""
        base = Fitness(1.0, n_r=5, n_g=5, n_b=5)
        assert Fitness(1.0, 4, 9, 9) > base
        assert Fitness(1.0, 5, 4, 9) > base
        assert Fitness(1.0, 5, 5, 4) > base
        assert not (Fitness(1.0, 6, 0, 0) > base)

    def test_equal_is_ge(self):
        a = Fitness(1.0, 3, 2, 1)
        b = Fitness(1.0, 3, 2, 1)
        assert a >= b and b >= a and not a > b

    def test_partial_success_compares_on_rate(self):
        assert Fitness(0.75) > Fitness(0.5)
        assert Fitness(0.5) >= Fitness(0.5)


class TestEvaluator:
    def test_correct_netlist_scores_functional(self):
        evaluator = Evaluator(_and_spec(), RcgpConfig())
        fitness = evaluator.evaluate(_and_netlist())
        assert fitness.functional
        assert fitness.n_r == 1
        assert fitness.n_g == 2

    def test_wrong_netlist_scores_below_one(self):
        netlist = RqfpNetlist(2)
        gate = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(gate, 0))  # wrong port
        evaluator = Evaluator(_and_spec(), RcgpConfig())
        fitness = evaluator.evaluate(netlist)
        assert not fitness.functional
        assert 0.0 < fitness.success < 1.0

    def test_success_rate_counts_bits(self):
        """One wrong pattern out of four -> 75 % bit success."""
        netlist = RqfpNetlist(2)
        netlist.add_output(1)  # y = a instead of a AND b
        evaluator = Evaluator(_and_spec(), RcgpConfig())
        assert evaluator.success_rate(netlist) == 0.75

    def test_inactive_gates_not_counted(self):
        netlist = _and_netlist()
        netlist.add_gate(CONST_PORT, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        evaluator = Evaluator(_and_spec(), RcgpConfig())
        fitness = evaluator.evaluate(netlist)
        assert fitness.n_r == 1  # dead gate ignored via shrink

    def test_po_fanout_violation_costed_as_splitters(self):
        """Two POs on one port must pay a splitter in n_r."""
        netlist = RqfpNetlist(2)
        gate = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
        port = netlist.gate_output_port(gate, 2)
        netlist.add_output(port)
        netlist.add_output(port)
        spec = [_and_spec()[0], _and_spec()[0]]
        evaluator = Evaluator(spec, RcgpConfig())
        fitness = evaluator.evaluate(netlist)
        assert fitness.functional
        assert fitness.n_r == 2  # gate + legalization splitter

    def test_garbage_counted_on_active_netlist(self):
        evaluator = Evaluator(_and_spec(), RcgpConfig())
        fitness = evaluator.evaluate(_and_netlist())
        assert fitness.n_g == 2

    def test_buffers_disabled(self):
        config = RcgpConfig(count_buffers_in_fitness=False)
        evaluator = Evaluator(_and_spec(), config)
        assert evaluator.evaluate(_and_netlist()).n_b == 0

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            Evaluator([], RcgpConfig())

    def test_mismatched_spec_rejected(self):
        with pytest.raises(ValueError):
            Evaluator([TruthTable.variable(0, 2),
                       TruthTable.variable(0, 3)], RcgpConfig())

    def test_finalize_produces_legal_equivalent(self):
        netlist = _and_netlist()
        netlist.add_gate(CONST_PORT, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        evaluator = Evaluator(_and_spec(), RcgpConfig())
        final = evaluator.finalize(netlist)
        final.validate(require_single_fanout=True)
        assert final.to_truth_tables() == _and_spec()


class TestSampledSimulationPath:
    """Force the non-exhaustive path with a tiny exhaustive limit."""

    def _config(self, **kw):
        return RcgpConfig(exhaustive_input_limit=1,
                          simulation_patterns=32, seed=3, **kw)

    def test_correct_netlist_verified_by_sat(self):
        evaluator = Evaluator(_and_spec(), self._config())
        assert not evaluator.exhaustive
        fitness = evaluator.evaluate(_and_netlist())
        assert fitness.functional
        assert evaluator.sat_calls >= 1

    def test_wrong_netlist_rejected(self):
        netlist = RqfpNetlist(2)
        netlist.add_output(1)
        evaluator = Evaluator(_and_spec(), self._config())
        fitness = evaluator.evaluate(netlist)
        assert not fitness.functional

    def test_counterexample_strengthens_patterns(self):
        """A sim-clean but wrong candidate adds its counterexample."""
        spec = tabulate_word(lambda x: int(x == 7), 3, 1)
        config = RcgpConfig(exhaustive_input_limit=1,
                            simulation_patterns=4, seed=5)
        evaluator = Evaluator(spec, config)
        # Candidate constant-0 differs only at pattern 7.
        netlist = RqfpNetlist(3)
        gate = netlist.add_gate(CONST_PORT, CONST_PORT, CONST_PORT,
                                0b111_111_111)  # M(!1,!1,!1) = 0
        netlist.add_output(netlist.gate_output_port(gate, 0))
        before = len(evaluator._patterns)
        fitness = evaluator.evaluate(netlist)
        if not fitness.functional and evaluator.sat_calls:
            assert len(evaluator._patterns) >= before

    def test_sat_disabled_trusts_simulation(self):
        evaluator = Evaluator(_and_spec(), self._config(verify_with_sat=False))
        fitness = evaluator.evaluate(_and_netlist())
        assert fitness.functional
        assert evaluator.sat_calls == 0


class TestBddVerificationPath:
    def test_bdd_backend_verifies_correct_candidate(self):
        config = RcgpConfig(exhaustive_input_limit=1, simulation_patterns=16,
                            seed=3, verify_method="bdd")
        evaluator = Evaluator(_and_spec(), config)
        fitness = evaluator.evaluate(_and_netlist())
        assert fitness.functional
        assert evaluator.sat_calls >= 1

    def test_bdd_backend_rejects_wrong_candidate(self):
        spec = tabulate_word(lambda x: int(x == 7), 3, 1)
        config = RcgpConfig(exhaustive_input_limit=1, simulation_patterns=3,
                            seed=11, verify_method="bdd")
        evaluator = Evaluator(spec, config)
        netlist = RqfpNetlist(3)
        gate = netlist.add_gate(CONST_PORT, CONST_PORT, CONST_PORT,
                                0b111_111_111)  # constant 0
        netlist.add_output(netlist.gate_output_port(gate, 0))
        fitness = evaluator.evaluate(netlist)
        # Either simulation caught it (some pattern = 7) or BDD did.
        assert not fitness.functional or evaluator.sat_calls > 0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            RcgpConfig(verify_method="magic")
