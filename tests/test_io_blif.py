"""Unit tests for the BLIF reader / writer."""

import pytest

from repro.errors import ParseError
from repro.io.blif import parse_blif, write_blif
from repro.logic.truth_table import TruthTable
from repro.networks.convert import tables_to_aig

FULL_ADDER_BLIF = """
.model full_adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
"""


class TestParse:
    def test_full_adder(self):
        aig = parse_blif(FULL_ADDER_BLIF)
        assert aig.name == "full_adder"
        assert aig.input_names == ["a", "b", "cin"]
        assert aig.output_names == ["sum", "cout"]
        tts = aig.to_truth_tables()
        assert tts[0] == TruthTable.from_function(lambda a, b, c: a ^ b ^ c, 3)
        assert tts[1] == TruthTable.from_function(
            lambda a, b, c: (a & b) | (a & c) | (b & c), 3)

    def test_dont_cares_expand(self):
        text = """.model m
.inputs a b
.outputs y
.names a b y
1- 1
.end
"""
        aig = parse_blif(text)
        assert aig.to_truth_tables()[0] == TruthTable.variable(0, 2)

    def test_off_set_cover(self):
        """Rows with output 0 define the complement."""
        text = """.model m
.inputs a
.outputs y
.names a y
1 0
.end
"""
        aig = parse_blif(text)
        assert aig.to_truth_tables()[0] == ~TruthTable.variable(0, 1)

    def test_constant_one_cover(self):
        text = """.model m
.inputs a
.outputs y
.names y
1
.end
"""
        aig = parse_blif(text)
        assert aig.to_truth_tables()[0] == TruthTable.constant(True, 1)

    def test_intermediate_signals(self):
        text = """.model m
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
11 1
.end
"""
        aig = parse_blif(text)
        assert aig.to_truth_tables()[0] == TruthTable.from_function(
            lambda a, b, c: a & b & c, 3)

    def test_line_continuation(self):
        text = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
        aig = parse_blif(text)
        assert aig.num_inputs == 2

    def test_comments_stripped(self):
        text = "# top\n.model m # name\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"
        aig = parse_blif(text)
        assert aig.to_truth_tables()[0] == TruthTable.variable(0, 1)

    def test_undriven_signal_rejected(self):
        with pytest.raises(ParseError):
            parse_blif(".model m\n.inputs a\n.outputs y\n.end\n")

    def test_latch_rejected(self):
        with pytest.raises(ParseError):
            parse_blif(".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n")

    def test_loop_rejected(self):
        text = """.model m
.inputs a
.outputs y
.names y2 y
1 1
.names y y2
1 1
.end
"""
        with pytest.raises(ParseError):
            parse_blif(text)

    def test_duplicate_definition_rejected(self):
        text = """.model m
.inputs a
.outputs y
.names a y
1 1
.names a y
0 1
.end
"""
        with pytest.raises(ParseError):
            parse_blif(text)


class TestWrite:
    def test_round_trip(self, random_tables):
        tables = random_tables(4, 3)
        aig = tables_to_aig(tables, name="rt")
        text = write_blif(aig)
        again = parse_blif(text)
        assert again.to_truth_tables() == tables

    def test_constant_output_round_trip(self):
        aig = tables_to_aig([TruthTable.constant(True, 1),
                             TruthTable.constant(False, 1)])
        again = parse_blif(write_blif(aig))
        assert again.to_truth_tables() == aig.to_truth_tables()

    def test_complemented_output_round_trip(self):
        tables = [~TruthTable.variable(0, 2)]
        aig = tables_to_aig(tables)
        again = parse_blif(write_blif(aig))
        assert again.to_truth_tables() == tables
