"""Unit tests for the RQFP netlist data structure."""

import pytest

from repro.errors import FanoutViolation, NetlistError
from repro.logic.truth_table import TruthTable
from repro.rqfp.gate import NORMAL_CONFIG, SPLITTER_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpGate, RqfpNetlist


def _and_netlist():
    """Single gate computing AND on output 2 (R(a,b,1) normal config)."""
    netlist = RqfpNetlist(2)
    gate = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
    netlist.add_output(netlist.gate_output_port(gate, 2))
    return netlist


class TestPortIndexing:
    def test_paper_convention(self):
        """Fig. 3: const=0, PIs 1..n_pi, then 3 ports per gate."""
        netlist = RqfpNetlist(2)
        assert netlist.first_gate_port(0) == 3
        netlist.add_gate(1, 2, 0, NORMAL_CONFIG)
        assert netlist.gate_output_port(0, 0) == 3
        assert netlist.gate_output_port(0, 2) == 5
        assert netlist.first_gate_port(1) == 6
        assert netlist.num_ports() == 6

    def test_port_classification(self):
        netlist = RqfpNetlist(2)
        netlist.add_gate(1, 2, 0, NORMAL_CONFIG)
        assert netlist.is_const_port(0)
        assert netlist.is_input_port(1) and netlist.is_input_port(2)
        assert netlist.is_gate_port(3)
        assert not netlist.is_gate_port(0)

    def test_port_gate_lookup(self):
        netlist = RqfpNetlist(1)
        netlist.add_gate(1, 0, 0, NORMAL_CONFIG)
        netlist.add_gate(2, 0, 0, NORMAL_CONFIG)
        assert netlist.port_gate(5) == 1
        assert netlist.port_output_index(5) == 0

    def test_port_gate_rejects_pi(self):
        netlist = RqfpNetlist(1)
        with pytest.raises(NetlistError):
            netlist.port_gate(1)


class TestConstruction:
    def test_forward_reference_rejected(self):
        netlist = RqfpNetlist(1)
        with pytest.raises(NetlistError):
            netlist.add_gate(1, 5, 0, NORMAL_CONFIG)  # port 5 doesn't exist

    def test_bad_config_rejected(self):
        netlist = RqfpNetlist(1)
        with pytest.raises(ValueError):
            netlist.add_gate(1, 0, 0, 512)

    def test_gate_replace_input(self):
        gate = RqfpGate(1, 2, 0, NORMAL_CONFIG)
        gate.replace_input(1, 0)
        assert gate.inputs == (1, 0, 0)
        with pytest.raises(ValueError):
            gate.replace_input(3, 0)

    def test_copy_is_deep(self):
        netlist = _and_netlist()
        dup = netlist.copy()
        dup.gates[0].replace_input(0, 0)
        assert netlist.gates[0].in0 == 1

    def test_describe_format(self):
        netlist = _and_netlist()
        text = netlist.describe()
        assert "(1, 2, 0, 100-010-001)" in text
        assert "(5)" in text


class TestConnectivity:
    def test_consumers_and_garbage(self):
        netlist = _and_netlist()
        consumers = netlist.consumers()
        assert consumers[5] == [("po", 0, 0)]
        assert netlist.num_garbage == 2  # outputs 0 and 1 dangle
        assert sorted(netlist.garbage_ports()) == [3, 4]

    def test_fanout_violation_detection(self):
        netlist = RqfpNetlist(1)
        netlist.add_gate(1, 1, 0, NORMAL_CONFIG)  # PI used twice
        assert netlist.fanout_violations() == [1]
        with pytest.raises(FanoutViolation):
            netlist.validate()
        netlist.validate(require_single_fanout=False)

    def test_const_port_exempt_from_fanout(self):
        netlist = RqfpNetlist(1)
        netlist.add_gate(1, 0, 0, NORMAL_CONFIG)  # const twice: fine
        netlist.validate()

    def test_levels_and_depth(self):
        netlist = RqfpNetlist(1)
        g0 = netlist.add_gate(1, 0, 0, NORMAL_CONFIG)
        g1 = netlist.add_gate(netlist.gate_output_port(g0, 0), 0, 0,
                              NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g1, 0))
        assert netlist.levels() == [1, 2]
        assert netlist.depth() == 2

    def test_reachable_and_shrink(self):
        netlist = RqfpNetlist(1)
        g0 = netlist.add_gate(1, 0, 0, NORMAL_CONFIG)
        netlist.add_gate(0, 0, 0, SPLITTER_CONFIG)  # dead gate
        netlist.add_output(netlist.gate_output_port(g0, 0))
        assert netlist.reachable_gates() == [0]
        shrunk = netlist.shrink()
        assert shrunk.num_gates == 1
        assert shrunk.to_truth_tables() == netlist.to_truth_tables()

    def test_shrink_remaps_outputs(self):
        netlist = RqfpNetlist(1)
        netlist.add_gate(0, 0, 0, SPLITTER_CONFIG)  # dead
        g1 = netlist.add_gate(1, 0, 0, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g1, 1))
        shrunk = netlist.shrink()
        assert shrunk.num_gates == 1
        assert shrunk.outputs == [shrunk.gate_output_port(0, 1)]


class TestSemantics:
    def test_and_netlist_function(self):
        netlist = _and_netlist()
        tables = netlist.to_truth_tables()
        assert tables == [TruthTable.from_function(lambda a, b: a & b, 2)]

    def test_pi_passthrough_output(self):
        netlist = RqfpNetlist(2)
        netlist.add_output(2)
        assert netlist.to_truth_tables() == [TruthTable.variable(1, 2)]

    def test_const_output(self):
        netlist = RqfpNetlist(1)
        netlist.add_output(CONST_PORT)
        assert netlist.to_truth_tables() == [TruthTable.constant(True, 1)]

    def test_simulation_matches_cnf_encoding(self, rng):
        from repro.bench.random_circuits import random_rqfp
        from repro.sat.equivalence import check_against_tables
        for _ in range(10):
            netlist = random_rqfp(3, 5, 2, rng)
            tables = netlist.to_truth_tables()
            result = check_against_tables(netlist.encoder(), tables)
            assert result.equivalent is True

    def test_simulate_wrong_arity(self):
        netlist = RqfpNetlist(2)
        with pytest.raises(NetlistError):
            netlist.simulate([1], 1)
