"""Structured SAT instances: graph coloring, parity chains, and the
miter of two differently-optimized networks (solver integration depth)."""

import random

import pytest

from repro.logic.truth_table import TruthTable
from repro.networks.convert import tables_to_aig, tables_to_mig
from repro.opt.aig_opt import resyn2
from repro.opt.mig_opt import aqfp_resynthesis
from repro.sat.cardinality import exactly_one
from repro.sat.cnf import CNF
from repro.sat.equivalence import check_equivalence
from repro.sat.solver import SAT, UNSAT, Solver


def _coloring_cnf(edges, vertices, colors):
    """var(v, c) one-hot per vertex; adjacent vertices differ."""
    cnf = CNF()
    var = {}
    for v in range(vertices):
        var.update({(v, c): cnf.new_var() for c in range(colors)})
        exactly_one(cnf, [var[(v, c)] for c in range(colors)])
    for u, w in edges:
        for c in range(colors):
            cnf.add_clause([-var[(u, c)], -var[(w, c)]])
    return cnf, var


class TestGraphColoring:
    def test_triangle_needs_three_colors(self):
        triangle = [(0, 1), (1, 2), (0, 2)]
        cnf2, _ = _coloring_cnf(triangle, 3, 2)
        assert Solver(cnf2).solve() == UNSAT
        cnf3, var = _coloring_cnf(triangle, 3, 3)
        solver = Solver(cnf3)
        assert solver.solve() == SAT
        model = solver.model()
        chosen = {v: next(c for c in range(3) if model[var[(v, c)]])
                  for v in range(3)}
        assert len(set(chosen.values())) == 3

    def test_odd_cycle_not_two_colorable(self):
        cycle = [(i, (i + 1) % 5) for i in range(5)]
        cnf, _ = _coloring_cnf(cycle, 5, 2)
        assert Solver(cnf).solve() == UNSAT

    def test_even_cycle_two_colorable(self):
        cycle = [(i, (i + 1) % 6) for i in range(6)]
        cnf, _ = _coloring_cnf(cycle, 6, 2)
        assert Solver(cnf).solve() == SAT

    def test_petersen_graph_three_colorable(self):
        outer = [(i, (i + 1) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        edges = outer + spokes + inner
        cnf, _ = _coloring_cnf(edges, 10, 3)
        assert Solver(cnf).solve() == SAT
        cnf2, _ = _coloring_cnf(edges, 10, 2)
        assert Solver(cnf2).solve() == UNSAT


class TestParityChains:
    def test_xor_chain_constraint_propagation(self):
        """x1 ^ x2 ^ ... ^ xn = 1 with all-but-one fixed forces the last."""
        from repro.sat.tseitin import encode_xor_many
        cnf = CNF()
        xs = cnf.new_vars(8)
        out = encode_xor_many(cnf, xs)
        cnf.add_clause([out])            # parity must be odd
        for x in xs[:-1]:
            cnf.add_clause([-x])         # seven zeros
        solver = Solver(cnf)
        assert solver.solve() == SAT
        assert solver.model()[xs[-1]] is True


class TestCrossOptimizedMiters:
    def test_resyn2_vs_aqfp_networks_equivalent(self, rng):
        """Two independently optimized implementations must stay
        SAT-provably equivalent — the CEC use-case inside RCGP."""
        for _ in range(5):
            tables = [TruthTable(4, rng.getrandbits(16)) for _ in range(2)]
            aig = resyn2(tables_to_aig(tables))
            mig = aqfp_resynthesis(tables_to_mig(tables))
            result = check_equivalence(aig.encoder(), mig.encoder(), 4)
            assert result.equivalent is True

    def test_deliberate_bug_caught(self, rng):
        tables = [TruthTable(4, rng.getrandbits(16))]
        aig = resyn2(tables_to_aig(tables))
        broken = [TruthTable(4, tables[0].bits ^ (1 << rng.randrange(16)))]
        mig = tables_to_mig(broken)
        result = check_equivalence(aig.encoder(), mig.encoder(), 4)
        assert result.equivalent is False
