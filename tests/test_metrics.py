"""Unit tests for circuit cost metrics."""

import pytest

from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.metrics import CircuitCost, circuit_cost, garbage_lower_bound
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


class TestCircuitCost:
    def test_jj_formula(self):
        cost = CircuitCost(n_r=3, n_b=2, n_d=3, n_g=2)
        assert cost.jjs == 80  # full adder RCGP row of Table 1

    def test_table1_jj_rows(self):
        """Every Table 1 row satisfies JJs = 24 n_r + 4 n_b."""
        rows = [(6, 2, 152), (3, 3, 84), (12, 10, 328), (11, 7, 292),
                (8, 3, 204), (20, 12, 528), (15, 7, 388), (16, 5, 404),
                (11, 10, 304), (3, 3, 84), (4, 7, 124), (5, 14, 76 + 84),
                (3, 2, 80), (4, 6, 120), (5, 10, 160), (3, 3, 84),
                (11, 25, 268 + 96), (8, 10, 208), (5, 4, 136), (9, 19, 244 + 48)]
        # Rows with arithmetic quirks in the scanned PDF are corrected to
        # the formula; the formula itself is the invariant under test.
        for n_r, n_b, _ in rows:
            assert CircuitCost(n_r, n_b, 0, 0).jjs == 24 * n_r + 4 * n_b

    def test_as_row(self):
        cost = CircuitCost(n_r=2, n_b=1, n_d=2, n_g=0, runtime=1.234)
        row = cost.as_row()
        assert row["JJs"] == 52
        assert row["T"] == 1.23

    def test_str(self):
        text = str(CircuitCost(1, 2, 3, 4, 5.0))
        assert "n_r=1" in text and "JJs=32" in text


class TestGarbageLowerBound:
    def test_paper_column(self):
        assert garbage_lower_bound(3, 2) == 1   # full adder
        assert garbage_lower_bound(4, 1) == 3   # 4gt10
        assert garbage_lower_bound(2, 4) == 0   # decoder_2_4
        assert garbage_lower_bound(6, 1) == 5   # mux4
        assert garbage_lower_bound(8, 8) == 0   # hwb8


class TestCircuitCostOfNetlist:
    def test_computes_plan_when_missing(self):
        netlist = RqfpNetlist(2)
        gate = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(gate, 2))
        cost = circuit_cost(netlist, runtime=0.5)
        assert cost.n_r == 1
        assert cost.n_g == 2
        assert cost.n_d == 1
        assert cost.runtime == 0.5
