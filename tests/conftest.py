"""Shared fixtures for the test suite."""

import random

import pytest

from repro.logic.truth_table import TruthTable


@pytest.fixture
def rng():
    """Deterministic RNG so failures reproduce."""
    return random.Random(0xC61)


@pytest.fixture
def random_tables(rng):
    """Factory for random multi-output specifications."""
    def make(num_inputs: int, num_outputs: int):
        return [TruthTable(num_inputs, rng.getrandbits(1 << num_inputs))
                for _ in range(num_outputs)]
    return make
