"""Unit tests for LP-exact buffer insertion."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.random_circuits import random_rqfp
from repro.errors import NetlistError
from repro.rqfp.buffer_opt import optimal_levels
from repro.rqfp.buffers import greedy_plan, schedule_levels, _count_buffers
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


def _brute_force_minimum(netlist, depth):
    """Exhaustive minimum buffer count over all feasible level maps."""
    n = netlist.num_gates
    best = None
    for levels in itertools.product(range(1, depth + 1), repeat=n):
        feasible = True
        for g, gate in enumerate(netlist.gates):
            for port in gate.inputs:
                if netlist.is_gate_port(port):
                    if levels[g] <= levels[netlist.port_gate(port)]:
                        feasible = False
                        break
            if not feasible:
                break
        if not feasible:
            continue
        _, total = _count_buffers(netlist, list(levels), depth)
        if best is None or total < best:
            best = total
    return best


class TestOptimalLevels:
    def test_empty_netlist(self):
        plan = optimal_levels(RqfpNetlist(2))
        assert plan.num_buffers == 0 and plan.depth == 0

    def test_matches_brute_force_on_small_random(self, rng):
        for _ in range(15):
            netlist = random_rqfp(2, rng.randint(1, 4), 2, rng)
            plan = optimal_levels(netlist)
            expected = _brute_force_minimum(netlist, plan.depth)
            assert plan.num_buffers == expected, netlist.describe()

    def test_never_worse_than_heuristic(self, rng):
        for _ in range(20):
            netlist = random_rqfp(3, rng.randint(1, 10), 2, rng)
            exact = optimal_levels(netlist)
            heuristic = schedule_levels(netlist)
            assert exact.num_buffers <= heuristic.num_buffers
            assert exact.depth == heuristic.depth

    def test_respects_topological_order(self, rng):
        netlist = random_rqfp(3, 8, 2, rng)
        plan = optimal_levels(netlist)
        for g, gate in enumerate(netlist.gates):
            for port in gate.inputs:
                if netlist.is_gate_port(port):
                    assert plan.levels[g] > plan.levels[netlist.port_gate(port)]

    def test_deeper_pipeline_rejected_below_critical(self):
        netlist = RqfpNetlist(1)
        g0 = netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        g1 = netlist.add_gate(netlist.gate_output_port(g0, 0), CONST_PORT,
                              CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g1, 0))
        with pytest.raises(NetlistError):
            optimal_levels(netlist, depth=1)

    def test_explicit_deeper_depth_allowed(self):
        netlist = RqfpNetlist(1)
        g0 = netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g0, 0))
        plan = optimal_levels(netlist, depth=3)
        assert plan.depth == 3
        # The single gate floats to minimize PI cost (level 1) vs PO
        # cost (level 3); either extreme costs 2 buffers total.
        assert plan.num_buffers == 2


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 3), st.integers(1, 6), st.integers(1, 2),
       st.integers(0, 2 ** 31))
def test_lp_optimum_dominates_all_heuristics(num_inputs, num_gates,
                                             num_outputs, seed):
    netlist = random_rqfp(num_inputs, num_gates, num_outputs,
                          random.Random(seed))
    exact = optimal_levels(netlist)
    assert exact.num_buffers <= schedule_levels(netlist).num_buffers
    assert exact.num_buffers <= greedy_plan(netlist).num_buffers
    assert exact.num_buffers == sum(exact.edge_buffers.values())
