"""Unit tests for the AQFP cell-level expansion."""

import pytest

from repro.core.config import RcgpConfig
from repro.core.synthesis import rcgp_synthesize
from repro.errors import NetlistError
from repro.logic.bitops import full_mask, variable_pattern
from repro.logic.truth_table import tabulate_word
from repro.rqfp.aqfp import (
    CELL_JJS,
    AqfpCell,
    AqfpNetlist,
    expand_to_aqfp,
    jj_breakdown,
)
from repro.rqfp.buffers import schedule_levels
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.metrics import circuit_cost
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


def _and_netlist():
    netlist = RqfpNetlist(2)
    gate = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
    netlist.add_output(netlist.gate_output_port(gate, 2))
    return netlist


class TestExpansionStructure:
    def test_gate_expands_to_three_splitters_three_majs(self):
        aqfp = expand_to_aqfp(_and_netlist())
        assert aqfp.count("splitter") == 3
        assert aqfp.count("maj3") == 3

    def test_jj_totals_match_cost_model(self):
        """AQFP cell JJs == 24*n_r + 4*n_b for any circuit."""
        netlist = _and_netlist()
        plan = schedule_levels(netlist)
        cost = circuit_cost(netlist, plan)
        aqfp = expand_to_aqfp(netlist, plan)
        assert aqfp.total_jjs() == cost.jjs

    def test_buffers_expand_to_two_aqfp_buffers_each(self):
        # Chain with an unbalanced edge: one RQFP buffer -> 2 AQFP buffers.
        netlist = RqfpNetlist(1)
        g0 = netlist.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        g1 = netlist.add_gate(netlist.gate_output_port(g0, 0), CONST_PORT,
                              CONST_PORT, NORMAL_CONFIG)
        g2 = netlist.add_gate(netlist.gate_output_port(g1, 0),
                              netlist.gate_output_port(g0, 1),
                              CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g2, 0))
        plan = schedule_levels(netlist)
        aqfp = expand_to_aqfp(netlist, plan)
        assert aqfp.count("buffer") == 2 * plan.num_buffers

    def test_breakdown_sums_to_total(self):
        netlist = _and_netlist()
        breakdown = jj_breakdown(netlist)
        partial = sum(v for k, v in breakdown.items() if k != "total")
        assert partial == breakdown["total"]

    def test_unknown_cell_kind_rejected(self):
        with pytest.raises(NetlistError):
            AqfpCell("flux_capacitor", ())

    def test_dangling_fanin_rejected(self):
        aqfp = AqfpNetlist(0)
        with pytest.raises(NetlistError):
            aqfp.add_cell(AqfpCell("buffer", (5,)))


class TestExpansionSemantics:
    def _check_equivalence(self, netlist):
        plan = schedule_levels(netlist)
        aqfp = expand_to_aqfp(netlist, plan)
        n = netlist.num_inputs
        mask = full_mask(n)
        words = [variable_pattern(i, n) for i in range(n)]
        assert aqfp.simulate(words, mask) == netlist.simulate(words, mask)

    def test_and_gate(self):
        self._check_equivalence(_and_netlist())

    def test_random_netlists(self, rng):
        from repro.bench.random_circuits import random_rqfp
        from repro.rqfp.splitters import insert_splitters
        for _ in range(15):
            netlist = insert_splitters(
                random_rqfp(3, 5, 2, rng, legal_fanout=True))
            self._check_equivalence(netlist)

    def test_synthesized_decoder(self):
        spec = tabulate_word(lambda x: 1 << x, 2, 4)
        result = rcgp_synthesize(spec, RcgpConfig(generations=150, seed=9,
                                                  shrink="always"))
        plan = result.plan
        aqfp = expand_to_aqfp(result.netlist, plan)
        mask = full_mask(2)
        words = [variable_pattern(i, 2) for i in range(2)]
        assert aqfp.simulate(words, mask) == \
            result.netlist.simulate(words, mask)
        assert aqfp.total_jjs() == result.cost.jjs
