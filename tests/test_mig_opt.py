"""Unit tests for MIG algebraic rewriting (aqfp_resynthesis analogue)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.truth_table import TruthTable
from repro.networks.aig import CONST1, lit, lit_not
from repro.networks.convert import tables_to_mig
from repro.networks.mig import Mig
from repro.opt.mig_opt import (
    aqfp_resynthesis,
    mig_algebraic_rewrite,
    relevance_rewrite,
    rewrite_associativity,
    rewrite_distributivity,
)


class TestDistributivity:
    def test_merges_shared_pair(self):
        """M(M(x,y,u), M(x,y,v), z) -> M(x,y,M(u,v,z)) saves one gate."""
        mig = Mig(5)
        x, y, u, v, z = (lit(n) for n in mig.inputs)
        inner1 = mig.add_maj(x, y, u)
        inner2 = mig.add_maj(x, y, v)
        mig.add_output(mig.add_maj(inner1, inner2, z))
        assert mig.size() == 3
        out = rewrite_distributivity(mig)
        assert out.size() == 2
        assert out.to_truth_tables() == mig.to_truth_tables()

    def test_no_false_positives(self, random_tables):
        for _ in range(10):
            tables = random_tables(4, 2)
            mig = tables_to_mig(tables)
            out = rewrite_distributivity(mig)
            assert out.to_truth_tables() == tables
            assert out.size() <= mig.size()


class TestAssociativity:
    def test_preserves_function(self, random_tables):
        for _ in range(10):
            tables = random_tables(4, 2)
            mig = tables_to_mig(tables)
            out = rewrite_associativity(mig)
            assert out.to_truth_tables() == tables
            assert out.size() <= mig.size()

    def test_exposes_sharing(self):
        """M(x,u,M(y,u,z)) with M(y,u,x) already present can reuse it."""
        mig = Mig(4)
        x, y, u, z = (lit(n) for n in mig.inputs)
        existing = mig.add_maj(y, u, x)      # the shareable node
        inner = mig.add_maj(y, u, z)
        root = mig.add_maj(x, u, inner)
        mig.add_output(existing)
        mig.add_output(root)
        out = rewrite_associativity(mig)
        assert out.to_truth_tables() == mig.to_truth_tables()
        assert out.size() <= mig.size()


class TestRelevance:
    def test_preserves_function(self, random_tables):
        for _ in range(10):
            tables = random_tables(4, 2)
            mig = tables_to_mig(tables)
            out = relevance_rewrite(mig)
            assert out.to_truth_tables() == tables

    def test_collapses_redundant_reuse(self):
        """M(x, y, M(x, w, z)): substituting x -> !y inside is sound."""
        mig = Mig(4)
        x, y, w, z = (lit(n) for n in mig.inputs)
        inner = mig.add_maj(x, w, z)
        mig.add_output(mig.add_maj(x, y, inner))
        out = relevance_rewrite(mig)
        assert out.to_truth_tables() == mig.to_truth_tables()


class TestFullRewrite:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4), st.data())
    def test_function_invariant(self, n, data):
        bits = data.draw(st.integers(0, (1 << (1 << n)) - 1))
        tables = [TruthTable(n, bits)]
        mig = tables_to_mig(tables)
        out = mig_algebraic_rewrite(mig)
        assert out.to_truth_tables() == tables

    def test_monotone_size(self, random_tables):
        tables = random_tables(5, 3)
        mig = tables_to_mig(tables)
        out = aqfp_resynthesis(mig)
        assert out.size() <= mig.size()
        assert out.to_truth_tables() == tables

    def test_idempotent_at_fixpoint(self, random_tables):
        tables = random_tables(4, 1)
        once = aqfp_resynthesis(tables_to_mig(tables))
        twice = aqfp_resynthesis(once)
        assert twice.size() == once.size()
