"""Tests for the multi-job scheduler and persistent job store.

The headline guarantees:

* **fair-share determinism** — a job interleaved with any number of
  others is bit-identical to the same job run alone;
* **kill-and-resume** — a scheduler restarted over the same store
  converges to the identical final result;
* **store-served results** — finished jobs are recognized by content
  hash and never re-evaluated.
"""

import json
import os
import time

import pytest

from repro.core.config import RcgpConfig
from repro.core.restart import multi_start
from repro.core.synthesis import SynthesisResult
from repro.errors import LeaseHeld, StoreCorruption
from repro.io.rqfp_json import netlist_to_dict
from repro.jobs import (DEFAULT_LEASE_TTL, DONE, FAILED, JobSpec, JobStore,
                        PENDING, RUNNING, Scheduler, TELEMETRY_TRUNCATED,
                        identity_config_dict, parallel_safe_config,
                        set_fault_hook)
from repro.logic.truth_table import TruthTable, tabulate_word


def _decoder_spec():
    return tabulate_word(lambda x: 1 << x, 2, 4)


def _xor_and_spec():
    return [TruthTable.from_function(lambda a, b: a ^ b, 2),
            TruthTable.from_function(lambda a, b: a & b, 2)]


def _chromosome(result: SynthesisResult) -> dict:
    return netlist_to_dict(result.evolution.netlist)


class TestJobSpec:
    def test_job_id_stable_and_operational_fields_ignored(self):
        spec = tuple(_xor_and_spec())
        a = JobSpec(spec, RcgpConfig(generations=100, seed=1))
        b = JobSpec(spec, RcgpConfig(generations=100, seed=1, workers=8,
                                     eval_cache_size=17,
                                     telemetry_path="/tmp/x.jsonl",
                                     batch_retries=9, track_history=True,
                                     verify_result=True))
        assert a.job_id == b.job_id

    def test_search_relevant_fields_change_identity(self):
        spec = tuple(_xor_and_spec())
        base = JobSpec(spec, RcgpConfig(generations=100, seed=1))
        assert base.job_id != JobSpec(
            spec, RcgpConfig(generations=100, seed=2)).job_id
        assert base.job_id != JobSpec(
            spec, RcgpConfig(generations=200, seed=1)).job_id
        assert base.job_id != JobSpec(
            tuple(_decoder_spec()), RcgpConfig(generations=100,
                                               seed=1)).job_id

    def test_seed_required(self):
        with pytest.raises(ValueError):
            JobSpec(tuple(_xor_and_spec()), RcgpConfig(seed=None))

    def test_identity_config_excludes_only_operational(self):
        identity = identity_config_dict(RcgpConfig(seed=3))
        assert "seed" in identity and "generations" in identity
        assert "workers" not in identity
        assert "telemetry_path" not in identity


class TestJobStore:
    def test_memory_round_trip(self):
        store = JobStore(None)
        assert not store.persistent
        store.save_record("j1", {"state": PENDING})
        assert store.load_record("j1")["state"] == PENDING
        assert store.load_result("j1") is None
        assert store.telemetry_path("j1") is None

    def test_disk_round_trip_and_atomicity(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert store.persistent
        store.save_record("j1", {"state": RUNNING, "slices": 2})
        # no stray temp files after an atomic write
        assert os.listdir(str(tmp_path / "j1")) == ["job.json"]
        again = JobStore(str(tmp_path))
        record = again.load_record("j1")
        assert record["state"] == RUNNING and record["slices"] == 2
        assert again.jobs() == ["j1"]

    def test_checkpoint_round_trip(self, tmp_path):
        from repro.core.synthesis import initialize_netlist
        store = JobStore(str(tmp_path))
        config = RcgpConfig(generations=50, seed=9)
        netlist = initialize_netlist(_xor_and_spec())
        store.save_checkpoint("j1", netlist, 30, config)
        loaded, done = store.load_checkpoint("j1")
        assert done == 30
        assert netlist_to_dict(loaded) == netlist_to_dict(netlist)
        assert store.load_checkpoint("absent") is None


class TestSchedulerDeterminism:
    def test_concurrent_jobs_bit_identical_to_solo(self):
        """Two interleaved jobs each equal their run-alone twins."""
        spec = _xor_and_spec()
        configs = [RcgpConfig(generations=120, seed=s) for s in (11, 12)]
        solo = {}
        for config in configs:
            with Scheduler(quantum=25) as scheduler:
                job = scheduler.submit(spec, config)
                scheduler.run()
                solo[config.seed] = _chromosome(job.result())
        with Scheduler(quantum=25) as scheduler:
            jobs = [scheduler.submit(spec, c) for c in configs]
            scheduler.run()
            for config, job in zip(configs, jobs):
                assert _chromosome(job.result()) == solo[config.seed]

    def test_single_slice_matches_monolithic_run(self):
        """quantum=None preserves the legacy single-run trajectory."""
        from repro.core.engine import EvolutionRun
        from repro.core.synthesis import initialize_netlist
        spec = _xor_and_spec()
        config = RcgpConfig(generations=100, seed=4)
        initial = initialize_netlist(spec)
        direct = EvolutionRun(spec, config, initial=initial).run()
        with Scheduler() as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run()
            result = job.result()
        assert netlist_to_dict(result.evolution.netlist) == \
            netlist_to_dict(direct.netlist)
        assert result.evolution.fitness.key() == direct.fitness.key()
        assert result.evolution.evaluations == direct.evaluations

    def test_duplicate_submission_is_same_job(self):
        spec = _xor_and_spec()
        config = RcgpConfig(generations=60, seed=2)
        with Scheduler() as scheduler:
            first = scheduler.submit(spec, config)
            second = scheduler.submit(spec, config)
            assert first is second
            scheduler.run()
            assert len(scheduler.jobs()) == 1

    def test_unseeded_submission_gets_a_recorded_seed(self):
        with Scheduler() as scheduler:
            job = scheduler.submit(_xor_and_spec(),
                                   RcgpConfig(generations=10))
            assert job.spec.config.seed is not None
            assert job.record["seed"] == job.spec.config.seed


class TestSchedulerPersistence:
    def test_kill_and_resume_identical_result(self, tmp_path):
        """A run cut off mid-flight resumes to the bit-identical end."""
        spec = _xor_and_spec()
        config = RcgpConfig(generations=120, seed=11)
        with Scheduler(quantum=25) as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run()
            uninterrupted = _chromosome(job.result())

        store = JobStore(str(tmp_path))
        with Scheduler(store, quantum=25) as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run(max_ticks=2)
            assert job.state == RUNNING
            assert 0 < job.generations_done < config.generations
        # simulate the process dying here: fresh store + scheduler
        with Scheduler(JobStore(str(tmp_path)), quantum=25) as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run()
            assert job.state == DONE
            assert _chromosome(job.result()) == uninterrupted

    def test_finished_job_served_without_rerun(self, tmp_path):
        spec = _xor_and_spec()
        config = RcgpConfig(generations=80, seed=5)
        with Scheduler(JobStore(str(tmp_path))) as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run()
            first = _chromosome(job.result())
            evaluations = job.record["evaluations"]

        with Scheduler(JobStore(str(tmp_path))) as scheduler:
            job = scheduler.submit(spec, config)
            assert job.state == DONE and job.from_store
            scheduler.run()  # nothing to do
            served = job.result()
            assert _chromosome(served) == first
            # the record still shows only the original run's work
            assert job.record["evaluations"] == evaluations
        assert served.verify()
        assert served.cost.n_r == served.evolution.fitness.n_r

    def test_served_result_reconstructs_full_synthesis_result(
            self, tmp_path):
        spec = _decoder_spec()
        config = RcgpConfig(generations=60, seed=3)
        with Scheduler(JobStore(str(tmp_path))) as scheduler:
            live = scheduler.submit(spec, config)
            scheduler.run()
            live_result = live.result()
        with Scheduler(JobStore(str(tmp_path))) as scheduler:
            served = scheduler.submit(spec, config).result()
        assert isinstance(served, SynthesisResult)
        assert _chromosome(served) == _chromosome(live_result)
        assert served.cost.as_row() == live_result.cost.as_row()
        assert served.initial.cost.as_row() == \
            live_result.initial.cost.as_row()
        assert served.evolution.generations == \
            live_result.evolution.generations
        assert [t.bits for t in served.spec] == [t.bits for t in spec]

    def test_telemetry_is_job_stamped_and_continuous(self, tmp_path):
        spec = _xor_and_spec()
        config = RcgpConfig(generations=100, seed=7)
        store = JobStore(str(tmp_path))
        with Scheduler(store, quantum=25) as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run(max_ticks=2)
        with Scheduler(JobStore(str(tmp_path)), quantum=25) as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run()
        events = [json.loads(line) for line in
                  open(store.telemetry_path(job.id))]
        assert all(e["job_id"] == job.id for e in events)
        tags = [e["event"] for e in events]
        assert tags[0] == "job_start"
        assert "job_resume" in tags   # the second process appended
        assert "job_slice" in tags and "job_end" in tags
        assert "run_end" in tags      # engine events share the stream

    def test_failed_job_reports_and_other_jobs_continue(
            self, monkeypatch, tmp_path):
        import repro.jobs.scheduler as scheduler_module
        from repro.errors import SynthesisError

        spec = _xor_and_spec()
        good = RcgpConfig(generations=40, seed=1)
        bad = RcgpConfig(generations=40, seed=1000)
        real_run = scheduler_module.EvolutionRun

        class Boom(real_run):
            def run(self):
                if self.config.seed >= 1000:   # only the bad job's slices
                    raise SynthesisError("injected failure")
                return super().run()

        monkeypatch.setattr(scheduler_module, "EvolutionRun", Boom)
        with Scheduler(JobStore(str(tmp_path)), quantum=20) as scheduler:
            bad_job = scheduler.submit(spec, bad)
            good_job = scheduler.submit(spec, good)
            scheduler.run()
            assert bad_job.state == FAILED
            assert "injected failure" in bad_job.record["error"]
            assert good_job.state == DONE
            with pytest.raises(Exception, match="failed"):
                bad_job.result()
            assert good_job.result().verify()


class TestSharedWorkerPool:
    def test_pooled_jobs_bit_identical_to_inline(self):
        spec = _decoder_spec()
        configs = [RcgpConfig(generations=80, seed=s, offspring=8)
                   for s in (7, 8)]
        inline = {}
        for config in configs:
            with Scheduler(quantum=40) as scheduler:
                job = scheduler.submit(spec, config)
                scheduler.run()
                inline[config.seed] = job.result()
        with Scheduler(workers=2, quantum=40) as scheduler:
            jobs = [scheduler.submit(spec, c) for c in configs]
            scheduler.run()
            for config, job in zip(configs, jobs):
                pooled = job.result()
                twin = inline[config.seed]
                assert _chromosome(pooled) == _chromosome(twin)
                assert pooled.evolution.evaluations == \
                    twin.evolution.evaluations
                assert pooled.evolution.backend == "shared-pool"

    def test_parallel_safe_config(self):
        safe = RcgpConfig(seed=1)
        assert parallel_safe_config(3, safe)                 # exhaustive
        sampled = RcgpConfig(seed=1, exhaustive_input_limit=2,
                             verify_with_sat=False)
        assert parallel_safe_config(3, sampled)              # seeded
        sat = RcgpConfig(seed=1, exhaustive_input_limit=2,
                         verify_with_sat=True)
        assert not parallel_safe_config(3, sat)              # SAT feedback


class TestMultiStartClient:
    def test_multi_start_keys_and_duplicates(self):
        spec = _xor_and_spec()
        config = RcgpConfig(generations=60)
        best, keys = multi_start(spec, [1, 2, 2], config, name="ms")
        assert len(keys) == 3
        assert keys[1] == keys[2]          # duplicate seed, one job
        best_key = max(keys)
        assert best is not None and best_key in keys

    def test_multi_start_resumable_via_store(self, tmp_path):
        spec = _xor_and_spec()
        config = RcgpConfig(generations=60)
        store = JobStore(str(tmp_path))
        best1, keys1 = multi_start(spec, [4, 5], config,
                                   store=store)
        best2, keys2 = multi_start(spec, [4, 5], config,
                                   store=JobStore(str(tmp_path)))
        assert keys1 == keys2
        assert netlist_to_dict(best1) == netlist_to_dict(best2)


class TestCrashSafeWrites:
    """Durable atomic writes + typed corruption + the recovery sweep."""

    def test_fault_hook_sees_every_write_step(self, tmp_path):
        seen = []
        previous = set_fault_hook(
            lambda point, path: seen.append(
                (point, os.path.basename(path))))
        try:
            JobStore(str(tmp_path)).save_record("j1", {"state": PENDING})
        finally:
            set_fault_hook(previous)
        assert seen == [("write", "job.json"), ("replace", "job.json"),
                        ("synced", "job.json")]

    def test_crash_before_replace_preserves_previous_state(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save_record("j1", {"state": PENDING, "slices": 1})

        def _boom(point, path):
            if point == "replace":
                raise RuntimeError("injected crash")

        previous = set_fault_hook(_boom)
        try:
            with pytest.raises(RuntimeError):
                store.save_record("j1", {"state": RUNNING, "slices": 2})
        finally:
            set_fault_hook(previous)
        # Old artifact intact, and the in-flight tmp file cleaned up.
        record = store.load_record("j1")
        assert record["state"] == PENDING and record["slices"] == 1
        assert os.listdir(str(tmp_path / "j1")) == ["job.json"]

    def test_torn_artifact_raises_typed_corruption(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save_record("j1", {"state": DONE})
        path = tmp_path / "j1" / "job.json"
        path.write_bytes(b'{"state": "do')   # torn mid-write
        with pytest.raises(StoreCorruption) as err:
            store.load_record("j1")
        assert err.value.path == str(path)
        assert "job.json" in str(err.value)

    def test_open_sweep_quarantines_and_cleans(self, tmp_path):
        job_dir = tmp_path / "j1"
        job_dir.mkdir()
        (job_dir / "job.json").write_text(
            json.dumps({"state": RUNNING, "slices": 1}))
        (job_dir / "checkpoint.json").write_bytes(b'{"netlist": [[')
        (job_dir / ".job.json.tmp.999.7").write_bytes(b"partial")
        (job_dir / "telemetry.jsonl").write_bytes(
            b'{"event": "job_start", "job_id": "j1"}\n{"event": "job_sl')

        store = JobStore(str(tmp_path))
        names = sorted(os.listdir(str(job_dir)))
        assert "job.json" in names                      # intact: kept
        assert "checkpoint.json" not in names           # torn: aside
        assert any(".corrupt-" in name for name in names)
        assert not any(".tmp." in name for name in names)
        assert store.quarantined and store.quarantined_artifacts()
        assert store.load_checkpoint("j1") is None      # torn -> rerun

        # The repaired stream is valid JSONL ending in the marker.
        events = [json.loads(line) for line in
                  (job_dir / "telemetry.jsonl").read_bytes().splitlines()]
        assert events[0]["event"] == "job_start"
        assert events[-1]["event"] == TELEMETRY_TRUNCATED
        assert events[-1]["dropped_bytes"] > 0

    def test_read_telemetry_tolerates_live_torn_tail(self, tmp_path):
        store = JobStore(str(tmp_path))
        path = store.telemetry_path("j1")
        raw = b'{"event": "job_start", "job_id": "j1"}\n{"event": "tor'
        with open(path, "wb") as handle:
            handle.write(raw)
        events = [json.loads(line) for line in
                  store.read_telemetry("j1").splitlines()]
        assert [e["event"] for e in events] == \
            ["job_start", TELEMETRY_TRUNCATED]
        # Non-destructive: the file still holds the in-flight bytes.
        with open(path, "rb") as handle:
            assert handle.read() == raw


class TestLeases:
    """Per-job leases: exclusivity, heartbeat, stale takeover."""

    def _two_stores(self, tmp_path):
        return (JobStore(str(tmp_path), owner="owner-a"),
                JobStore(str(tmp_path), owner="owner-b"))

    def test_exclusive_acquire_release(self, tmp_path):
        a, b = self._two_stores(tmp_path)
        assert a.acquire_lease("j1")
        assert a.acquire_lease("j1")           # re-entrant for the owner
        assert not b.acquire_lease("j1")
        assert a.held_leases() == ["j1"]
        info = b.lease_info("j1")
        assert info["owner"] == "owner-a" and info["live"]
        a.release_lease("j1")
        assert b.acquire_lease("j1")
        assert b.lease_info("j1")["owner"] == "owner-b"

    def test_required_acquire_raises_lease_held(self, tmp_path):
        a, b = self._two_stores(tmp_path)
        assert a.acquire_lease("j1")
        with pytest.raises(LeaseHeld) as err:
            b.acquire_lease("j1", required=True)
        assert err.value.owner == "owner-a"
        assert err.value.http_status == 409

    def test_stale_heartbeat_is_taken_over(self, tmp_path):
        a, b = self._two_stores(tmp_path)
        assert a.acquire_lease("j1")
        lease_path = os.path.join(str(tmp_path), "j1", "lease.json")
        ancient = time.time() - 10 * DEFAULT_LEASE_TTL
        os.utime(lease_path, (ancient, ancient))
        assert b.acquire_lease("j1")
        assert b.lease_takeovers == 1
        assert b.lease_info("j1")["owner"] == "owner-b"
        # The previous owner notices on its next heartbeat and backs off.
        assert not a.refresh_lease("j1")
        assert a.held_leases() == []

    def test_dead_pid_is_taken_over_before_ttl(self, tmp_path):
        import socket
        import subprocess
        import sys as _sys
        child = subprocess.Popen([_sys.executable, "-c", "pass"])
        child.wait()
        b = JobStore(str(tmp_path), owner="owner-b")
        job_dir = tmp_path / "j1"
        job_dir.mkdir()
        (job_dir / "lease.json").write_text(json.dumps(
            {"owner": "ghost", "pid": child.pid,
             "host": socket.gethostname(), "acquired_at": time.time()}))
        assert b.acquire_lease("j1")           # fresh mtime, dead pid
        assert b.lease_takeovers == 1

    def test_torn_lease_file_is_cleared_and_reacquired(self, tmp_path):
        b = JobStore(str(tmp_path), owner="owner-b")
        job_dir = tmp_path / "j1"
        job_dir.mkdir()
        (job_dir / "lease.json").write_bytes(b'{"owner": "gh')
        assert b.lease_info("j1")["live"] is False
        assert b.acquire_lease("j1")
        assert b.lease_info("j1")["owner"] == "owner-b"

    def test_scheduler_skips_foreign_lease(self, tmp_path):
        config = RcgpConfig(generations=60, seed=3)
        foreign = JobStore(str(tmp_path), owner="foreign")
        with Scheduler(JobStore(str(tmp_path), owner="mine"),
                       quantum=30) as scheduler:
            blocked = scheduler.submit(_xor_and_spec(), config)
            free = scheduler.submit(_decoder_spec(), config)
            assert foreign.acquire_lease(blocked.id)
            scheduler.run(max_ticks=10)
            assert free.state == DONE
            assert blocked.state != DONE
            foreign.release_lease(blocked.id)
            scheduler.run()
            assert blocked.state == DONE
            # Leases released with the jobs: nothing held after close.
        assert foreign.acquire_lease(blocked.id)

    def test_two_schedulers_split_queue_single_owner_each(self, tmp_path):
        import threading
        config = RcgpConfig(generations=300, seed=5)
        specs = [_xor_and_spec(), _decoder_spec(),
                 [TruthTable.from_function(lambda a, b: a | b, 2)]]
        stores = [JobStore(str(tmp_path), owner=f"sched-{i}")
                  for i in range(2)]
        schedulers = [Scheduler(store, quantum=25) for store in stores]
        for scheduler in schedulers:
            for spec in specs:
                scheduler.submit(spec, config)
        threads = [threading.Thread(target=scheduler.run)
                   for scheduler in schedulers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        try:
            reader = JobStore(str(tmp_path), owner="reader")
            for job_id in reader.jobs():
                assert reader.load_record(job_id)["state"] == DONE
                owners = {json.loads(line)["owner"]
                          for line in
                          reader.read_telemetry(job_id).splitlines()
                          if json.loads(line).get("event") in
                          ("job_start", "job_resume", "job_slice")}
                assert len(owners) == 1, \
                    f"job {job_id} driven by {sorted(owners)}"
        finally:
            for scheduler in schedulers:
                scheduler.close()


class TestSigkillSweep:
    """A sampled end-to-end SIGKILL sweep (the full sweep runs in CI
    via ``tools/fault_store.py``): kill a child batch at interposed
    store write points, restart, require bit-identical recovery."""

    def test_sampled_kill_points_recover_bit_identically(self, tmp_path):
        import importlib.util
        tool = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "tools", "fault_store.py")
        spec = importlib.util.spec_from_file_location("fault_store", tool)
        fault_store = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(fault_store)
        exercised = fault_store.kill_sweep(
            ["decoder_2_4"], generations=40, quantum=20, seed=0,
            sample=9, workdir=str(tmp_path), verbose=False)
        assert exercised >= 2
