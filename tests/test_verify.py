"""The end-of-run result gate (``repro.core.verify``).

The gate is deliberately *independent* of the fitness fast paths: it
re-simulates the final netlist on the object path, validates RQFP
legality against the buffer plan and (for sampled specs) proves
equivalence with the SAT miter.  These tests check both directions —
clean results pass and produce an accurate report; corrupted results
raise the precise typed exception.
"""

import pytest

import repro.core.verify as verify_mod
from repro.core.config import RcgpConfig
from repro.core.engine import EvolutionRun, read_telemetry
from repro.core.synthesis import initialize_netlist, rcgp_synthesize
from repro.core.verify import VerificationReport, verify_evolution_result
from repro.errors import (
    EquivalenceViolation,
    FanoutViolation,
    VerificationError,
    VerificationUndecided,
)
from repro.logic.truth_table import tabulate_word
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.netlist import RqfpNetlist
from repro.rqfp.splitters import insert_splitters


def _decoder_spec():
    return tabulate_word(lambda x: 1 << x, 2, 4)


def _synthesized(spec, **overrides):
    kwargs = dict(generations=30, mutation_rate=0.1, seed=7,
                  shrink="always")
    kwargs.update(overrides)
    return rcgp_synthesize(spec, RcgpConfig(**kwargs)).netlist


class TestGatePasses:
    def test_exhaustive_pass_skips_sat(self):
        spec = _decoder_spec()
        netlist = _synthesized(spec)
        report = verify_evolution_result(netlist, spec)
        assert isinstance(report, VerificationReport)
        assert report.exhaustive
        assert report.simulated_patterns == 4  # 2^2 inputs
        assert not report.sat_checked and report.sat_conflicts == 0
        assert report.plan is not None

    def test_sampled_pass_runs_sat(self):
        spec = _decoder_spec()
        netlist = _synthesized(spec)
        config = RcgpConfig(seed=7, exhaustive_input_limit=1,
                            simulation_patterns=32)
        report = verify_evolution_result(netlist, spec, config)
        assert not report.exhaustive
        assert report.simulated_patterns == verify_mod._GATE_PATTERNS
        assert report.sat_checked

    def test_gate_is_seed_stable(self):
        spec = _decoder_spec()
        netlist = _synthesized(spec)
        config = RcgpConfig(exhaustive_input_limit=1)  # unseeded sampled
        assert verify_evolution_result(netlist, spec, config).sat_checked


class TestGateRejects:
    def test_wrong_function_raises_equivalence_violation(self):
        spec = _decoder_spec()
        netlist = _synthesized(spec)
        wrong = list(spec)
        wrong[0], wrong[1] = wrong[1], wrong[0]
        with pytest.raises(EquivalenceViolation):
            verify_evolution_result(netlist, wrong)

    def test_sampled_wrong_function_carries_counterexample(self):
        spec = _decoder_spec()
        netlist = _synthesized(spec)
        wrong = list(spec)
        wrong[0], wrong[1] = wrong[1], wrong[0]
        config = RcgpConfig(seed=7, exhaustive_input_limit=1)
        with pytest.raises(EquivalenceViolation) as excinfo:
            verify_evolution_result(netlist, wrong, config)
        assert excinfo.value.counterexample is not None

    def test_illegal_fanout_raises_fanout_violation(self):
        # A legal function realized by an *illegal* netlist: one AND
        # gate whose output feeds two primary outputs.
        netlist = RqfpNetlist(2, "fanout")
        netlist.add_gate(1, 2, 0, NORMAL_CONFIG)  # AND(a, b)
        out = netlist.first_gate_port(0)
        netlist.add_output(out)
        netlist.add_output(out)
        spec = netlist.to_truth_tables()
        with pytest.raises(FanoutViolation):
            verify_evolution_result(netlist, spec)

    def test_undecided_sat_raises_verification_undecided(self, monkeypatch):
        spec = _decoder_spec()
        netlist = insert_splitters(_synthesized(spec))

        class _Undecided:
            equivalent = None
            counterexample = None
            conflicts = 123

        monkeypatch.setattr(verify_mod, "check_against_tables",
                            lambda *a, **k: _Undecided())
        config = RcgpConfig(seed=7, exhaustive_input_limit=1)
        with pytest.raises(VerificationUndecided):
            verify_evolution_result(netlist, spec, config)

    def test_typed_errors_share_the_verification_root(self):
        assert issubclass(EquivalenceViolation, VerificationError)
        assert issubclass(VerificationUndecided, VerificationError)


class TestEngineIntegration:
    def test_verify_result_flag_gates_the_run(self, tmp_path):
        path = tmp_path / "verify.jsonl"
        spec = _decoder_spec()
        config = RcgpConfig(generations=30, mutation_rate=0.1, seed=7,
                            shrink="always", verify_result=True,
                            telemetry_path=str(path))
        result = EvolutionRun(spec, config).run()
        assert result.verified
        events = read_telemetry(str(path))
        verify_events = [e for e in events if e["event"] == "verify"]
        assert len(verify_events) == 1
        assert verify_events[0]["exhaustive"] is True
        end = [e for e in events if e["event"] == "run_end"][-1]
        assert end["verified"] is True

    def test_gate_off_by_default(self):
        spec = _decoder_spec()
        config = RcgpConfig(generations=10, seed=7)
        result = EvolutionRun(spec, config).run()
        assert not result.verified

    def test_corrupted_finalize_is_caught(self, monkeypatch):
        # Simulate a bug downstream of fitness: finalize returns a
        # netlist computing the wrong function.  The engine's own
        # functional check uses the (possibly kernel/incremental)
        # evaluator; the gate must catch it independently.
        from repro.core import engine as engine_mod
        spec = _decoder_spec()
        wrong_spec = tabulate_word(lambda x: (1 << x) ^ 0xF, 2, 4)
        donor = _synthesized(wrong_spec)

        real_verify = verify_mod.verify_evolution_result
        monkeypatch.setattr(
            verify_mod, "verify_evolution_result",
            lambda netlist, spec_, config=None, plan=None:
                real_verify(donor, spec_, config, plan))
        config = RcgpConfig(generations=5, seed=7, verify_result=True)
        with pytest.raises(EquivalenceViolation):
            EvolutionRun(spec, config).run()


class TestCliPlumbing:
    def test_cli_exposes_verify_and_fault_knobs(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(
            ["synth", "design.v", "--verify",
             "--batch-timeout", "2.5", "--batch-retries", "5"])
        assert args.verify is True
        assert args.batch_timeout == 2.5
        assert args.batch_retries == 5

    def test_cli_defaults_leave_gate_off(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["synth", "design.v"])
        assert args.verify is False
        assert args.batch_timeout is None
        assert args.batch_retries == 2
