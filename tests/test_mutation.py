"""Unit + property tests for RCGP mutation (§3.2.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.random_circuits import random_rqfp
from repro.core.config import RcgpConfig
from repro.core.mutation import chromosome_length, mutate
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist
from repro.rqfp.splitters import insert_splitters


def _legal_parent(rng, num_inputs=3, num_gates=6, num_outputs=2):
    netlist = random_rqfp(num_inputs, num_gates, num_outputs, rng,
                          legal_fanout=True)
    return insert_splitters(netlist)


class TestChromosomeLength:
    def test_paper_formula(self):
        """n_L = 4 n_C + n_po; Fig. 3(a): 4 gates + 4 POs -> 20."""
        netlist = RqfpNetlist(2)
        for g in range(4):
            netlist.add_gate(CONST_PORT, CONST_PORT, CONST_PORT,
                             NORMAL_CONFIG)
        for _ in range(4):
            netlist.add_output(CONST_PORT)
        assert chromosome_length(netlist) == 20

    def test_shrink_reduces_length(self):
        """Fig. 3(c): removing a useless gate shrinks 20 -> 16."""
        netlist = RqfpNetlist(2)
        g0 = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
        netlist.add_gate(CONST_PORT, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g0, 0))
        assert chromosome_length(netlist) == 9
        assert chromosome_length(netlist.shrink()) == 5


class TestMutationInvariants:
    def test_parent_untouched(self, rng):
        parent = _legal_parent(rng)
        snapshot = parent.describe()
        config = RcgpConfig(mutation_rate=0.5, seed=1)
        for _ in range(20):
            mutate(parent, rng, config)
        assert parent.describe() == snapshot

    def test_single_fanout_preserved_without_po_mutation(self, rng):
        """The swap rule keeps gate-input fan-out legal (paper case 1)."""
        config = RcgpConfig(mutation_rate=0.3, enable_output_mutation=False)
        for trial in range(40):
            parent = _legal_parent(rng)
            child = mutate(parent, rng, config)
            assert child.fanout_violations() == [], f"trial {trial}"

    def test_structure_stays_valid(self, rng):
        config = RcgpConfig(mutation_rate=0.5)
        for _ in range(40):
            parent = _legal_parent(rng)
            child = mutate(parent, rng, config)
            child.validate(require_single_fanout=False)

    def test_gate_and_output_counts_stable(self, rng):
        """Point mutation never changes the chromosome shape."""
        parent = _legal_parent(rng)
        config = RcgpConfig(mutation_rate=1.0)
        child = mutate(parent, rng, config)
        assert child.num_gates == parent.num_gates
        assert child.num_outputs == parent.num_outputs

    def test_zero_rate_mutates_at_least_one_gene(self, rng):
        """m is drawn from [1, max(1, round(mu * n_L))], so even mu=0
        attempts one gene (it may be a no-op resample)."""
        parent = _legal_parent(rng)
        config = RcgpConfig(mutation_rate=0.0)
        mutate(parent, rng, config)  # must not raise


class TestMutationKinds:
    def test_inverter_mutation_only_changes_configs(self, rng):
        parent = _legal_parent(rng)
        config = RcgpConfig(mutation_rate=0.4,
                            enable_input_mutation=False,
                            enable_output_mutation=False)
        child = mutate(parent, rng, config)
        for pg, cg in zip(parent.gates, child.gates):
            assert pg.inputs == cg.inputs
        assert child.outputs == parent.outputs

    def test_output_mutation_only_changes_outputs(self, rng):
        parent = _legal_parent(rng)
        config = RcgpConfig(mutation_rate=0.6,
                            enable_input_mutation=False,
                            enable_inverter_mutation=False)
        child = mutate(parent, rng, config)
        for pg, cg in zip(parent.gates, child.gates):
            assert pg.inputs == cg.inputs and pg.config == cg.config

    def test_input_mutation_changes_some_connection(self, rng):
        config = RcgpConfig(mutation_rate=1.0,
                            enable_output_mutation=False,
                            enable_inverter_mutation=False)
        changed = 0
        for _ in range(20):
            parent = _legal_parent(rng)
            child = mutate(parent, rng, config)
            if any(pg.inputs != cg.inputs
                   for pg, cg in zip(parent.gates, child.gates)):
                changed += 1
        assert changed > 10  # heavily mutated offspring must differ

    def test_all_kinds_disabled_rejected(self):
        with pytest.raises(ValueError):
            RcgpConfig(enable_input_mutation=False,
                       enable_output_mutation=False,
                       enable_inverter_mutation=False)

    def test_inverter_flip_is_single_bit(self, rng):
        parent = _legal_parent(rng)
        # Force exactly one mutation by using a tiny chromosome rate.
        config = RcgpConfig(mutation_rate=1e-9,
                            enable_input_mutation=False,
                            enable_output_mutation=False)
        for _ in range(30):
            child = mutate(parent, rng, config)
            diffs = [bin(pg.config ^ cg.config).count("1")
                     for pg, cg in zip(parent.gates, child.gates)]
            assert sum(diffs) in (0, 1)


class TestSwapRule:
    def test_swap_reuses_displaced_port(self):
        """Paper Fig. 3 example: mutating a taken port swaps the genes."""
        netlist = RqfpNetlist(2)
        g0 = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
        g1 = netlist.add_gate(netlist.gate_output_port(g0, 0),
                              netlist.gate_output_port(g0, 1),
                              CONST_PORT, NORMAL_CONFIG)
        netlist.add_output(netlist.gate_output_port(g1, 0))
        # Mutate many times with inputs only; fan-out must stay legal and
        # the multiset of used source ports can only shuffle.
        rng = random.Random(7)
        config = RcgpConfig(mutation_rate=0.9, enable_output_mutation=False,
                            enable_inverter_mutation=False)
        parent = netlist
        for _ in range(100):
            child = mutate(parent, rng, config)
            assert child.fanout_violations() == []
            child.validate(require_single_fanout=True)
            parent = child


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2 ** 31), st.floats(0.01, 1.0))
def test_mutation_fuzz(seed, rate):
    rng = random.Random(seed)
    parent = insert_splitters(
        random_rqfp(3, 5, 2, rng, legal_fanout=True))
    config = RcgpConfig(mutation_rate=rate)
    child = mutate(parent, rng, config)
    child.validate(require_single_fanout=False)
    # Gate-input fan-out can only be violated through PO genes.
    violations = child.fanout_violations()
    consumers = child.consumers()
    for port in violations:
        kinds = [kind for kind, _, _ in consumers[port]]
        assert "po" in kinds, "gate-only fan-out violation: swap rule broken"


class TestMutationCap:
    def test_cap_limits_gene_changes(self, rng):
        """With max_mutated_genes=1 at mu=1, at most one gene differs."""
        parent = _legal_parent(rng, num_gates=8)
        config = RcgpConfig(mutation_rate=1.0, max_mutated_genes=1)
        for _ in range(25):
            child = mutate(parent, rng, config)
            diffs = 0
            for pg, cg in zip(parent.gates, child.gates):
                diffs += sum(a != b for a, b in zip(pg.inputs, cg.inputs))
                diffs += pg.config != cg.config
            diffs += sum(a != b for a, b in zip(parent.outputs, child.outputs))
            # A single input mutation may swap a second gene (paper rule 1).
            assert diffs <= 2

    def test_cap_never_below_one(self, rng):
        parent = _legal_parent(rng)
        config = RcgpConfig(mutation_rate=0.0, max_mutated_genes=0)
        mutate(parent, rng, config)  # must not raise
