"""Unit + property tests for representation conversions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.truth_table import TruthTable
from repro.networks.convert import (
    aig_to_mig,
    mig_to_aig,
    tables_to_aig,
    tables_to_mig,
)


class TestTablesToAig:
    def test_identity_and_names(self):
        tables = [TruthTable.variable(0, 2)]
        aig = tables_to_aig(tables, name="id", input_names=["a", "b"],
                            output_names=["out"])
        assert aig.name == "id"
        assert aig.input_names == ["a", "b"]
        assert aig.output_names == ["out"]
        assert aig.to_truth_tables() == tables
        assert aig.size() == 0  # pure wire

    def test_constants(self):
        tables = [TruthTable.constant(True, 2), TruthTable.constant(False, 2)]
        aig = tables_to_aig(tables)
        assert aig.to_truth_tables() == tables
        assert aig.size() == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tables_to_aig([])

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            tables_to_aig([TruthTable.variable(0, 2),
                           TruthTable.variable(0, 3)])

    def test_shared_cubes_are_hashed(self):
        """Two outputs with a common product share AND nodes."""
        f = TruthTable.from_function(lambda a, b, c: a & b, 3)
        g = TruthTable.from_function(lambda a, b, c: (a & b) | c, 3)
        aig = tables_to_aig([f, g])
        # a&b must exist once: total ANDs is 1 (f) + 1 (the OR) = 2.
        assert aig.size() == 2


class TestRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 5), st.data())
    def test_aig_mig_aig(self, n, data):
        bits = data.draw(st.integers(0, (1 << (1 << n)) - 1))
        tables = [TruthTable(n, bits)]
        aig = tables_to_aig(tables)
        mig = aig_to_mig(aig)
        back = mig_to_aig(mig)
        assert mig.to_truth_tables() == tables
        assert back.to_truth_tables() == tables

    def test_mig_not_larger_than_aig(self, random_tables):
        """AND→MAJ conversion is one-to-one, so sizes match or shrink."""
        tables = random_tables(4, 2)
        aig = tables_to_aig(tables)
        mig = aig_to_mig(aig)
        assert mig.size() <= aig.size()

    def test_tables_to_mig(self, random_tables):
        tables = random_tables(3, 3)
        mig = tables_to_mig(tables)
        assert mig.to_truth_tables() == tables
