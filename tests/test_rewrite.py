"""Unit tests for NPN cut rewriting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.truth_table import TruthTable
from repro.networks.aig import Aig, lit, lit_not
from repro.networks.convert import tables_to_aig
from repro.opt.rewrite import clear_library, library_size, rewrite


@pytest.fixture(autouse=True)
def fresh_library():
    clear_library()
    yield
    clear_library()


class TestRewrite:
    def test_preserves_function_random(self, random_tables):
        for _ in range(15):
            tables = random_tables(4, 2)
            aig = tables_to_aig(tables)
            out = rewrite(aig)
            assert out.to_truth_tables() == tables
            assert out.size() <= aig.size()

    def test_mux_pattern_shrinks(self):
        """A redundant mux built the long way: rewrite must match the
        4-node recipe or better."""
        aig = Aig(3)
        s, a, b = (lit(n) for n in aig.inputs)
        # (s & a) | (!s & b) built wastefully with double negations.
        t0 = aig.add_and(s, a)
        t1 = aig.add_and(lit_not(s), b)
        redundant = aig.add_or(aig.add_and(t0, t0), aig.add_and(t1, t1))
        aig.add_output(redundant)
        out = rewrite(aig)
        assert out.to_truth_tables() == aig.to_truth_tables()
        assert out.size() <= 3

    def test_constant_cut_collapses(self):
        aig = Aig(2)
        a, b = (lit(n) for n in aig.inputs)
        contradiction = aig.add_and(aig.add_and(a, b),
                                    aig.add_and(lit_not(a), b))
        aig.add_output(contradiction)
        out = rewrite(aig)
        assert out.to_truth_tables()[0] == TruthTable.constant(False, 2)
        assert out.size() == 0

    def test_library_learns(self, random_tables):
        assert library_size() == 0
        aig = tables_to_aig(random_tables(4, 2))
        rewrite(aig)
        assert library_size() > 0

    def test_library_reused_across_networks(self, random_tables):
        rewrite(tables_to_aig(random_tables(4, 1)))
        grown = library_size()
        rewrite(tables_to_aig(random_tables(4, 1)))
        assert library_size() >= grown

    def test_idempotent_at_fixpoint(self, random_tables):
        tables = random_tables(4, 1)
        once = rewrite(tables_to_aig(tables))
        twice = rewrite(once)
        assert twice.size() <= once.size()
        assert twice.to_truth_tables() == tables

    def test_without_network_learning(self, random_tables):
        tables = random_tables(3, 2)
        aig = tables_to_aig(tables)
        out = rewrite(aig, learn_from_network=False)
        assert out.to_truth_tables() == tables


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 4), st.integers(1, 3), st.integers(0, 2 ** 62))
def test_rewrite_function_invariant(num_inputs, num_outputs, seed):
    import random
    rng = random.Random(seed)
    tables = [TruthTable(num_inputs, rng.getrandbits(1 << num_inputs))
              for _ in range(num_outputs)]
    aig = tables_to_aig(tables)
    out = rewrite(aig)
    assert out.to_truth_tables() == tables
    assert out.size() <= aig.size()
