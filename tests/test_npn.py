"""Unit tests for NPN classification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.npn import (
    apply_transform,
    invert_transform,
    npn_canonical,
    npn_classes,
    same_npn_class,
)
from repro.logic.truth_table import TruthTable


class TestTransforms:
    def test_identity_transform(self):
        f = TruthTable(3, 0b10110100)
        identity = ((0, 1, 2), 0, 0)
        assert apply_transform(f, identity) == f

    def test_output_negation(self):
        f = TruthTable(2, 0b0110)
        g = apply_transform(f, ((0, 1), 0, 1))
        assert g == ~f

    def test_input_negation(self):
        f = TruthTable.variable(0, 2)
        g = apply_transform(f, ((0, 1), 0b01, 0))
        assert g == ~TruthTable.variable(0, 2)

    def test_permutation(self):
        f = TruthTable.variable(0, 2)
        g = apply_transform(f, ((1, 0), 0, 0))
        assert g == TruthTable.variable(1, 2)

    def test_invert_transform_round_trip(self, rng):
        for _ in range(40):
            n = rng.randint(1, 4)
            f = TruthTable(n, rng.getrandbits(1 << n))
            perm = list(range(n))
            rng.shuffle(perm)
            transform = (tuple(perm), rng.randrange(1 << n),
                         rng.randrange(2))
            g = apply_transform(f, transform)
            back = apply_transform(g, invert_transform(transform))
            assert back == f


class TestCanonical:
    def test_canonical_is_reachable(self, rng):
        for _ in range(30):
            n = rng.randint(1, 4)
            f = TruthTable(n, rng.getrandbits(1 << n))
            canon, transform = npn_canonical(f)
            assert apply_transform(f, transform) == canon

    def test_class_members_share_canon(self, rng):
        f = TruthTable(3, rng.getrandbits(8))
        canon_f, _ = npn_canonical(f)
        # Any transform of f must canonicalize identically.
        perm = (2, 0, 1)
        g = apply_transform(f, (perm, 0b101, 1))
        canon_g, _ = npn_canonical(g)
        assert canon_f == canon_g
        assert same_npn_class(f, g)

    def test_classic_class_counts(self):
        assert len(npn_classes(1)) == 2
        assert len(npn_classes(2)) == 4

    @pytest.mark.slow
    def test_three_variable_class_count(self):
        assert len(npn_classes(3)) == 14

    def test_and_or_same_class(self):
        conj = TruthTable.from_function(lambda a, b: a & b, 2)
        disj = TruthTable.from_function(lambda a, b: a | b, 2)
        assert same_npn_class(conj, disj)  # De Morgan = N + N

    def test_xor_not_in_and_class(self):
        conj = TruthTable.from_function(lambda a, b: a & b, 2)
        xor = TruthTable.from_function(lambda a, b: a ^ b, 2)
        assert not same_npn_class(conj, xor)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            same_npn_class(TruthTable.variable(0, 2),
                           TruthTable.variable(0, 3))


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 3), st.data())
def test_canonical_invariant_under_random_transforms(n, data):
    bits = data.draw(st.integers(0, (1 << (1 << n)) - 1))
    f = TruthTable(n, bits)
    perm = tuple(data.draw(st.permutations(list(range(n)))))
    transform = (perm, data.draw(st.integers(0, (1 << n) - 1)),
                 data.draw(st.integers(0, 1)))
    g = apply_transform(f, transform)
    assert npn_canonical(f)[0] == npn_canonical(g)[0]
