"""Additional windowing coverage: growth splices, whole-netlist windows,
interaction with the evaluator's invariants."""

import random

import pytest

from repro.core.config import RcgpConfig
from repro.core.synthesis import initialize_netlist
from repro.core.windowing import (
    Window,
    analyze_window,
    extract_window,
    splice_window,
    windowed_optimize,
)
from repro.rqfp.gate import NORMAL_CONFIG, SPLITTER_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


def _three_chain():
    netlist = RqfpNetlist(2)
    g0 = netlist.add_gate(1, 2, CONST_PORT, NORMAL_CONFIG)
    g1 = netlist.add_gate(netlist.gate_output_port(g0, 2), CONST_PORT,
                          CONST_PORT, NORMAL_CONFIG)
    g2 = netlist.add_gate(netlist.gate_output_port(g1, 1), CONST_PORT,
                          CONST_PORT, NORMAL_CONFIG)
    netlist.add_output(netlist.gate_output_port(g2, 2))
    return netlist


class TestGrowthSplice:
    def test_replacement_larger_than_window(self):
        """Splicing a *bigger* sub-netlist must re-index the suffix up."""
        netlist = _three_chain()
        window = analyze_window(netlist, 1, 2)  # just g1
        sub = extract_window(netlist, window)
        # Pad the replacement with a pass-through splitter stage.
        grown = RqfpNetlist(sub.num_inputs)
        s = grown.add_gate(CONST_PORT, 1, CONST_PORT, SPLITTER_CONFIG)
        gate = sub.gates[0]

        def remap(port):
            if port == 1:
                return grown.gate_output_port(s, 0)
            return port
        g = grown.add_gate(remap(gate.in0), remap(gate.in1),
                           remap(gate.in2), gate.config)
        for port in sub.outputs:
            index = sub.port_output_index(port)
            grown.add_output(grown.gate_output_port(g, index))
        assert grown.to_truth_tables() == sub.to_truth_tables()

        spliced = splice_window(netlist, window, grown)
        assert spliced.num_gates == netlist.num_gates + 1
        assert spliced.to_truth_tables() == netlist.to_truth_tables()

    def test_whole_netlist_window(self):
        netlist = _three_chain()
        window = analyze_window(netlist, 0, netlist.num_gates)
        assert window.input_ports == [1, 2]
        sub = extract_window(netlist, window)
        assert sub.to_truth_tables() == netlist.to_truth_tables()
        spliced = splice_window(netlist, window, sub)
        assert spliced.to_truth_tables() == netlist.to_truth_tables()


class TestWindowedOptimizeMore:
    def test_multiple_rounds_monotone(self):
        netlist = initialize_netlist(
            __import__("repro.bench.reciprocal",
                       fromlist=["intdiv"]).intdiv(4), "intdiv4")
        config = RcgpConfig(generations=100, mutation_rate=1.0,
                            max_mutated_genes=4, seed=2, shrink="always")
        one = windowed_optimize(netlist, window_gates=6, rounds=1,
                                config=config, seed=3)
        two = windowed_optimize(netlist, window_gates=6, rounds=2,
                                config=config, seed=3)
        assert two.gates_after <= one.gates_before
        assert two.netlist.to_truth_tables() == netlist.to_truth_tables()

    def test_window_struct_fields(self):
        netlist = _three_chain()
        window = analyze_window(netlist, 0, 2)
        assert isinstance(window, Window)
        assert window.num_gates == 2
