"""Flat structure-of-arrays kernel: bit-exactness properties.

The contract under test: :class:`NetlistKernel` is an alternative
*representation* of the same chromosome, never an approximation.  Every
operation the fitness function relies on — simulation, cone
resimulation (plain and tracked), shrink, levels, the fused buffer
estimate, fan-out counts, mutation, genome encoding — must match the
object netlist bit for bit, over random netlists x random mutation
chains and through the full evolution engine.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.bench.random_circuits import random_rqfp
from repro.bench.registry import get_benchmark
from repro.core.config import RcgpConfig
from repro.core.engine import (
    EvolutionRun,
    decode_genome,
    encode_genome,
    genome_with_delta,
)
from repro.core.fitness import Evaluator
from repro.core.kernel import NetlistKernel
from repro.core.mutation import mutate_with_delta
from repro.core.synthesis import initialize_netlist
from repro.logic.bitops import full_mask, variable_pattern
from repro.rqfp.buffers import estimate_buffers

pytestmark = []


def _words(num_inputs):
    return ([variable_pattern(i, num_inputs) for i in range(num_inputs)],
            full_mask(num_inputs))


def _mutation_config(**kwargs):
    base = dict(mutation_rate=0.25, max_mutated_genes=6, seed=5)
    base.update(kwargs)
    return RcgpConfig(**base)


class TestRoundTrips:
    def test_netlist_round_trip(self):
        for trial in range(20):
            netlist = random_rqfp(4, 12, 3, random.Random(trial))
            kernel = NetlistKernel.from_netlist(netlist)
            back = kernel.to_netlist()
            assert encode_genome(back) == encode_genome(netlist)
            assert back.input_names == netlist.input_names
            assert back.output_names == netlist.output_names
            assert back.name == netlist.name

    def test_genome_round_trip(self):
        for trial in range(20):
            netlist = random_rqfp(5, 10, 4, random.Random(50 + trial))
            genome = encode_genome(netlist)
            kernel = NetlistKernel.from_genome(genome)
            assert kernel.to_genome() == genome
            assert encode_genome(kernel) == genome
            assert encode_genome(decode_genome(genome)) == genome

    def test_copy_is_independent(self):
        kernel = NetlistKernel.from_netlist(
            random_rqfp(3, 8, 2, random.Random(1)))
        clone = kernel.copy()
        clone.in0[0] = (kernel.in0[0] + 1) % 4
        clone.outputs[0] = 0
        assert kernel.to_genome() != clone.to_genome()

    def test_shape_properties(self):
        netlist = random_rqfp(4, 9, 3, random.Random(2))
        kernel = NetlistKernel.from_netlist(netlist)
        assert kernel.num_inputs == netlist.num_inputs
        assert kernel.num_gates == netlist.num_gates
        assert kernel.num_outputs == netlist.num_outputs
        assert kernel.num_ports() == netlist.num_ports()
        assert kernel.first_gate_port(0) == netlist.first_gate_port(0)
        assert kernel.first_gate_port(5) == netlist.first_gate_port(5)


class TestStructuralEquality:
    """Every structural sweep matches the object netlist, for random
    netlists and for mutants thereof (exercising garbage gates,
    multi-fanout ports, and constant inputs)."""

    def _pairs(self, count=25):
        config = _mutation_config()
        for trial in range(count):
            rng = random.Random(300 + trial)
            netlist = random_rqfp(4, 14, 3, rng)
            if trial % 2:
                netlist, _ = mutate_with_delta(netlist, rng, config)
            yield netlist, NetlistKernel.from_netlist(netlist)

    def test_simulate_matches(self):
        for netlist, kernel in self._pairs():
            words, mask = _words(netlist.num_inputs)
            assert kernel.simulate(words, mask) == \
                netlist.simulate(words, mask)
            assert kernel.simulate_ports(words, mask) == \
                netlist.simulate_ports(words, mask)

    def test_levels_depth_match(self):
        for netlist, kernel in self._pairs():
            assert kernel.levels() == netlist.levels()
            assert kernel.depth() == netlist.depth()

    def test_estimate_buffers_matches(self):
        for netlist, kernel in self._pairs():
            assert kernel.estimate_buffers() == estimate_buffers(netlist)
            assert kernel.estimate_buffers() == netlist.estimate_buffers()

    def test_fanout_counts_match(self):
        for netlist, kernel in self._pairs():
            assert kernel.fanout_counts_flat() == \
                netlist.fanout_counts_flat()

    def test_reachable_and_shrink_match(self):
        for netlist, kernel in self._pairs():
            assert kernel.reachable_gates() == netlist.reachable_gates()
            assert kernel.shrink().to_genome() == \
                NetlistKernel.from_netlist(netlist.shrink()).to_genome()

    def test_consumers_match(self):
        for netlist, kernel in self._pairs():
            assert kernel.consumers() == netlist.consumers()


class TestConeResimulation:
    def test_resimulate_cone_matches_full(self):
        config = _mutation_config()
        for trial in range(25):
            rng = random.Random(600 + trial)
            parent = NetlistKernel.from_netlist(random_rqfp(4, 14, 3, rng))
            words, mask = _words(parent.num_inputs)
            base = parent.simulate_ports(words, mask)
            child, delta = mutate_with_delta(parent, rng, config)
            values = base.copy()
            child.resimulate_cone(values, mask, delta.touched_gates)
            assert values == child.simulate_ports(words, mask)

    def test_tracked_resim_matches_and_restores(self):
        """The tracked in-place cone produces the same values and the
        same recompute counter as the copying cone, and the undo log
        restores the parent vector exactly."""
        config = _mutation_config()
        for trial in range(25):
            rng = random.Random(900 + trial)
            parent = NetlistKernel.from_netlist(random_rqfp(4, 14, 3, rng))
            words, mask = _words(parent.num_inputs)
            base = parent.simulate_ports(words, mask)
            child, delta = mutate_with_delta(parent, rng, config)

            copied = base.copy()
            counted = child.resimulate_cone(copied, mask,
                                            delta.touched_gates)
            tracked = base.copy()
            counted2, undo = child.resimulate_cone_tracked(
                tracked, mask, delta.touched_gates)
            assert tracked == copied
            assert counted2 == counted
            for port, word in undo:
                tracked[port] = word
            assert tracked == base

    def test_tracked_resim_with_zipped_genes(self):
        config = _mutation_config()
        rng = random.Random(77)
        parent = NetlistKernel.from_netlist(random_rqfp(4, 12, 3, rng))
        words, mask = _words(parent.num_inputs)
        base = parent.simulate_ports(words, mask)
        child, delta = mutate_with_delta(parent, rng, config)
        zipped = list(zip(child.in0, child.in1, child.in2, child.config))
        values = base.copy()
        child.resimulate_cone_tracked(values, mask, delta.touched_gates,
                                      zipped)
        assert values == child.simulate_ports(words, mask)


class TestMutationEquivalence:
    def test_same_rng_stream_same_mutant(self):
        """Point mutation draws from the RNG in the identical order for
        both representations, so mutants are bit-identical."""
        config = _mutation_config()
        for trial in range(25):
            netlist = random_rqfp(4, 12, 3, random.Random(40 + trial))
            kernel = NetlistKernel.from_netlist(netlist)
            child_n, delta_n = mutate_with_delta(
                netlist, random.Random(trial), config)
            child_k, delta_k = mutate_with_delta(
                kernel, random.Random(trial), config)
            assert isinstance(child_k, NetlistKernel)
            assert encode_genome(child_k) == encode_genome(child_n)
            assert delta_k == delta_n
            assert delta_k.apply_to(kernel).to_genome() == \
                encode_genome(child_n)

    def test_rollback_restores_shared_consumer_map(self):
        config = _mutation_config()
        for trial in range(15):
            kernel = NetlistKernel.from_netlist(
                random_rqfp(4, 12, 3, random.Random(70 + trial)))
            before = kernel.to_genome()
            consumers = kernel.consumers()
            mutate_with_delta(kernel, random.Random(trial), config,
                              consumers=consumers, rollback=True)
            assert kernel.to_genome() == before
            assert consumers == kernel.consumers()

    def test_genome_with_delta_matches_encode(self):
        config = _mutation_config()
        for trial in range(20):
            parent = NetlistKernel.from_netlist(
                random_rqfp(4, 12, 3, random.Random(500 + trial)))
            child, delta = mutate_with_delta(parent, random.Random(trial),
                                             config)
            assert genome_with_delta(parent.to_genome(), delta) == \
                encode_genome(child)


class TestEvaluatorEquality:
    def test_full_evaluation_matches(self):
        config = _mutation_config()
        for trial in range(10):
            rng = random.Random(2000 + trial)
            netlist = random_rqfp(4, 15, 3, rng)
            spec = netlist.to_truth_tables()
            flat = Evaluator(spec, config).evaluate(
                NetlistKernel.from_netlist(netlist))
            obj = Evaluator(spec, config).evaluate(netlist)
            assert flat.key() == obj.key()

    def test_incremental_chain_matches_object_path(self):
        """Mutation chains from an evolving parent: flat incremental
        fitness == object incremental fitness == full fitness, and the
        ports_resimulated counters agree."""
        config = _mutation_config()
        for trial in range(8):
            outer = random.Random(3000 + trial)
            netlist = random_rqfp(4, 15, 3, outer)
            spec = netlist.to_truth_tables()
            kernel = NetlistKernel.from_netlist(netlist)
            ev_obj = Evaluator(spec, config)
            ev_flat = Evaluator(spec, config)
            reference = Evaluator(spec, config)
            state_obj = ev_obj.prepare_parent(netlist)
            state_flat = ev_flat.prepare_parent(kernel)
            for step in range(6):
                seed = outer.getrandbits(32)
                child_n, delta_n = mutate_with_delta(
                    netlist, random.Random(seed), config)
                child_k, delta_k = mutate_with_delta(
                    kernel, random.Random(seed), config)
                f_obj = ev_obj.evaluate_incremental(child_n, delta_n,
                                                    state_obj)
                f_flat = ev_flat.evaluate_incremental(child_k, delta_k,
                                                      state_flat)
                full = reference.evaluate(child_n)
                assert f_flat.key() == f_obj.key() == full.key()
                netlist, kernel = child_n, child_k
                state_obj = ev_obj.prepare_parent(netlist)
                state_flat = ev_flat.prepare_parent(kernel)
            assert ev_flat.ports_resimulated == ev_obj.ports_resimulated

    def test_finalize_returns_netlist(self):
        netlist = random_rqfp(4, 10, 3, random.Random(8))
        spec = netlist.to_truth_tables()
        evaluator = Evaluator(spec, _mutation_config())
        final = evaluator.finalize(NetlistKernel.from_netlist(netlist))
        assert final.describe() == evaluator.finalize(netlist).describe()

    def test_check_kernel_env_flag(self):
        """RCGP_CHECK_KERNEL verifies every kernel evaluation against
        the object netlist (and passes on correct code)."""
        env = dict(os.environ)
        env["RCGP_CHECK_KERNEL"] = "1"
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        code = (
            "import random\n"
            "from repro.bench.random_circuits import random_rqfp\n"
            "from repro.core.config import RcgpConfig\n"
            "from repro.core.fitness import Evaluator\n"
            "from repro.core.kernel import NetlistKernel\n"
            "from repro.core.mutation import mutate_with_delta\n"
            "rng = random.Random(3)\n"
            "netlist = random_rqfp(4, 12, 3, rng)\n"
            "parent = NetlistKernel.from_netlist(netlist)\n"
            "config = RcgpConfig(mutation_rate=0.3, max_mutated_genes=5,"
            " seed=1)\n"
            "ev = Evaluator(netlist.to_truth_tables(), config)\n"
            "assert ev._check_kernel\n"
            "state = ev.prepare_parent(parent)\n"
            "for _ in range(10):\n"
            "    child, delta = mutate_with_delta(parent, rng, config)\n"
            "    ev.evaluate_incremental(child, delta, state)\n"
            "    ev.evaluate(child)\n"
            "print('checked', ev.evaluations)\n"
        )
        result = subprocess.run([sys.executable, "-c", code], env=env,
                                capture_output=True, text=True, timeout=240)
        assert result.returncode == 0, result.stderr
        assert "checked 20" in result.stdout


class TestCounterexampleMasking:
    """Satellite regression: ``add_counterexample`` must mask the
    pattern to the input width unconditionally — a counterexample is an
    n-bit input assignment, and stray high bits (from any decoder)
    previously survived whenever ``num_inputs >= 31``."""

    def _sampled_evaluator(self, spec):
        config = RcgpConfig(exhaustive_input_limit=2, verify_with_sat=False,
                            simulation_patterns=64, seed=9,
                            mutation_rate=0.2, max_mutated_genes=4)
        return Evaluator(spec, config, random.Random(9))

    def test_stray_high_bits_are_masked(self):
        netlist = random_rqfp(4, 10, 3, random.Random(31))
        spec = netlist.to_truth_tables()
        clean = self._sampled_evaluator(spec)
        stray = self._sampled_evaluator(spec)
        clean.add_counterexample(5)
        stray.add_counterexample(5 | (1 << 40))
        assert stray._patterns == clean._patterns
        assert stray._words == clean._words
        assert stray._expected == clean._expected
        assert stray._mask == clean._mask
        # Identical epoch bookkeeping: both evaluators agree on fitness.
        child = random_rqfp(4, 10, 3, random.Random(32))
        assert stray.evaluate(child).key() == clean.evaluate(child).key()


class TestEngineEquality:
    def _run(self, kernel, **kwargs):
        benchmark = get_benchmark("decoder_2_4")
        spec = benchmark.spec()
        config = RcgpConfig(generations=60, offspring=4, mutation_rate=0.2,
                            max_mutated_genes=4, seed=77, kernel=kernel,
                            **kwargs)
        return EvolutionRun(spec, config, name="decoder_2_4").run()

    def test_flat_run_matches_object_run(self):
        flat = self._run("flat")
        obj = self._run("object")
        assert flat.fitness.key() == obj.fitness.key()
        assert flat.netlist.describe() == obj.netlist.describe()
        assert flat.evaluations == obj.evaluations
        assert flat.eval_incremental == obj.eval_incremental
        assert flat.ports_resimulated == obj.ports_resimulated

    def test_flat_run_matches_with_cache_disabled(self):
        flat = self._run("flat", eval_cache_size=0)
        obj = self._run("object", eval_cache_size=0)
        assert flat.fitness.key() == obj.fitness.key()
        assert flat.netlist.describe() == obj.netlist.describe()
        assert flat.evaluations == obj.evaluations

    def test_flat_run_on_benchmark_seed(self):
        benchmark = get_benchmark("ham3")
        spec = benchmark.spec()
        initial = initialize_netlist(spec, "ham3")
        results = []
        for kernel in ("flat", "object"):
            config = RcgpConfig(generations=40, offspring=4, seed=11,
                                mutation_rate=0.15, max_mutated_genes=4,
                                kernel=kernel)
            results.append(EvolutionRun(spec, config, initial=initial.copy(),
                                        name="ham3").run())
        assert results[0].fitness.key() == results[1].fitness.key()
        assert results[0].netlist.describe() == results[1].netlist.describe()

    @pytest.mark.slow
    def test_flat_pool_matches_serial(self):
        """workers=2 with the flat kernel is bit-identical to serial."""
        benchmark = get_benchmark("decoder_2_4")
        spec = benchmark.spec()
        config = RcgpConfig(generations=25, offspring=8, mutation_rate=0.2,
                            max_mutated_genes=4, seed=31, workers=2,
                            kernel="flat", incremental_eval=True)
        pooled = EvolutionRun(spec, config, name="decoder_2_4").run()
        serial = EvolutionRun(
            spec, config.replace(workers=0), name="decoder_2_4").run()
        assert pooled.fitness.key() == serial.fitness.key()
        assert pooled.netlist.describe() == serial.netlist.describe()


class TestConfigKnob:
    def test_kernel_knob_validation(self):
        assert RcgpConfig().kernel == "flat"
        assert RcgpConfig(kernel="object").kernel == "object"
        with pytest.raises(ValueError):
            RcgpConfig(kernel="numpy")

    def test_kernel_knob_round_trips_through_dict(self):
        config = RcgpConfig(kernel="object")
        assert RcgpConfig.from_dict(config.to_dict()).kernel == "object"
