"""Unit tests for buffer insertion (path balancing)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.random_circuits import random_rqfp
from repro.rqfp.buffers import (
    asap_levels,
    estimate_buffers,
    greedy_plan,
    schedule_levels,
)
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


def _chain(length: int) -> RqfpNetlist:
    netlist = RqfpNetlist(1)
    src = 1
    for _ in range(length):
        gate = netlist.add_gate(src, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        src = netlist.gate_output_port(gate, 0)
    netlist.add_output(src)
    return netlist


def _diamond() -> RqfpNetlist:
    """PI -> g0; g0 -> g1 (short path) and g0 -> g2 -> g3; g1,g3 -> g4-ish.

    Actually: g1 consumes g0 out0; g2 consumes g0 out1; g3 consumes g2;
    g4 consumes g1 and g3 — the g1 edge spans 2 levels and needs a buffer.
    """
    n = RqfpNetlist(1)
    g0 = n.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
    g1 = n.add_gate(n.gate_output_port(g0, 0), CONST_PORT, CONST_PORT,
                    NORMAL_CONFIG)
    g2 = n.add_gate(n.gate_output_port(g0, 1), CONST_PORT, CONST_PORT,
                    NORMAL_CONFIG)
    g3 = n.add_gate(n.gate_output_port(g2, 0), CONST_PORT, CONST_PORT,
                    NORMAL_CONFIG)
    g4 = n.add_gate(n.gate_output_port(g1, 0), n.gate_output_port(g3, 0),
                    CONST_PORT, NORMAL_CONFIG)
    n.add_output(n.gate_output_port(g4, 0))
    return n


class TestChains:
    def test_pure_chain_needs_no_buffers(self):
        plan = schedule_levels(_chain(5))
        assert plan.num_buffers == 0
        assert plan.depth == 5

    def test_empty_netlist(self):
        netlist = RqfpNetlist(2)
        plan = schedule_levels(netlist)
        assert plan.depth == 0 and plan.num_buffers == 0

    def test_pi_to_po_passthrough(self):
        netlist = RqfpNetlist(1)
        netlist.add_output(1)
        plan = schedule_levels(netlist)
        # Depth 0: the PI->PO edge spans the whole (empty) pipeline.
        assert plan.num_buffers == 0


class TestDiamond:
    def test_asap_unbalanced_edge_buffered(self):
        netlist = _diamond()
        plan = greedy_plan(netlist)
        # ASAP: g1 at level 2, g4 at level 4 -> one buffer on g1->g4.
        assert plan.num_buffers >= 1

    def test_coordinate_descent_not_worse(self):
        netlist = _diamond()
        greedy = greedy_plan(netlist)
        optimized = schedule_levels(netlist)
        assert optimized.num_buffers <= greedy.num_buffers
        assert optimized.depth == greedy.depth

    def test_retiming_wins_when_slack_exists(self):
        """A gate feeding a deep consumer should slide down (ALAP-ward)."""
        n = RqfpNetlist(2)
        g0 = n.add_gate(1, CONST_PORT, CONST_PORT, NORMAL_CONFIG)
        g1 = n.add_gate(n.gate_output_port(g0, 0), CONST_PORT, CONST_PORT,
                        NORMAL_CONFIG)
        g2 = n.add_gate(n.gate_output_port(g1, 0), CONST_PORT, CONST_PORT,
                        NORMAL_CONFIG)
        # g3 reads PI 2 directly and g2: at ASAP level 1 the PI edge is
        # free but the g2 edge would be impossible; feasible window puts
        # g3 at level 4; the PI->g3 edge then costs 3 buffers no matter
        # what, but a floater gate placed late saves its own input edge.
        g3 = n.add_gate(2, n.gate_output_port(g2, 0), CONST_PORT,
                        NORMAL_CONFIG)
        n.add_output(n.gate_output_port(g3, 0))
        plan = schedule_levels(n)
        for (kind, src, dst, slot), count in plan.edge_buffers.items():
            assert count >= 0


class TestPlanConsistency:
    def test_levels_topological(self, rng):
        for _ in range(20):
            netlist = random_rqfp(3, 8, 2, rng)
            plan = schedule_levels(netlist)
            for g, gate in enumerate(netlist.gates):
                for port in gate.inputs:
                    if netlist.is_gate_port(port):
                        src = netlist.port_gate(port)
                        assert plan.levels[g] > plan.levels[src]

    def test_buffer_total_matches_edges(self, rng):
        for _ in range(20):
            netlist = random_rqfp(3, 8, 2, rng)
            plan = schedule_levels(netlist)
            assert plan.num_buffers == sum(plan.edge_buffers.values())

    def test_estimate_matches_greedy(self, rng):
        for _ in range(20):
            netlist = random_rqfp(2, 6, 2, rng)
            assert estimate_buffers(netlist) == greedy_plan(netlist).num_buffers

    def test_depth_equals_netlist_depth(self, rng):
        for _ in range(10):
            netlist = random_rqfp(3, 6, 2, rng)
            assert schedule_levels(netlist).depth == netlist.depth()


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 4), st.integers(0, 8), st.integers(1, 3),
       st.integers(0, 2 ** 31))
def test_schedule_never_worse_than_asap(num_inputs, num_gates, num_outputs,
                                        seed):
    netlist = random_rqfp(num_inputs, num_gates, num_outputs,
                          random.Random(seed))
    optimized = schedule_levels(netlist)
    greedy = greedy_plan(netlist)
    assert optimized.num_buffers <= greedy.num_buffers
    assert optimized.depth == greedy.depth
