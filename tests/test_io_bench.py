"""Unit tests for the ISCAS .bench reader / writer."""

import pytest

from repro.errors import ParseError
from repro.io.bench_format import parse_bench, write_bench
from repro.logic.truth_table import TruthTable
from repro.networks.convert import tables_to_aig

# The canonical ISCAS-85 c17 netlist in .bench form.
C17_BENCH = """
# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


class TestParse:
    def test_c17_matches_registry_spec(self):
        """The real ISCAS c17 .bench must equal our c17 benchmark."""
        from repro.bench.revlib import c17
        aig = parse_bench(C17_BENCH)
        assert aig.to_truth_tables() == c17()

    def test_gate_zoo(self):
        text = """INPUT(a)
INPUT(b)
OUTPUT(y)
t1 = XOR(a, b)
t2 = NOR(a, b)
y = OR(t1, t2)
"""
        aig = parse_bench(text)
        want = TruthTable.from_function(
            lambda a, b: (a ^ b) | (1 - (a | b)), 2)
        assert aig.to_truth_tables()[0] == want

    def test_not_buff_const(self):
        text = """INPUT(a)
OUTPUT(y)
OUTPUT(z)
n = NOT(a)
y = BUFF(n)
z = CONST1()
"""
        aig = parse_bench(text)
        tts = aig.to_truth_tables()
        assert tts[0] == ~TruthTable.variable(0, 1)
        assert tts[1] == TruthTable.constant(True, 1)

    def test_wide_gates(self):
        text = """INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = AND(a, b, c)
"""
        aig = parse_bench(text)
        assert aig.to_truth_tables()[0] == TruthTable.from_function(
            lambda a, b, c: a & b & c, 3)

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ3(a, a, a)\n")

    def test_duplicate_definition_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n")

    def test_loop_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = BUFF(y)\n")

    def test_undriven_rejected(self):
        with pytest.raises(ParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\n")


class TestWrite:
    def test_round_trip_random(self, random_tables):
        for _ in range(5):
            tables = random_tables(4, 2)
            aig = tables_to_aig(tables)
            again = parse_bench(write_bench(aig))
            assert again.to_truth_tables() == tables

    def test_round_trip_constants_and_inverted(self):
        tables = [TruthTable.constant(True, 1), ~TruthTable.variable(0, 1)]
        aig = tables_to_aig(tables)
        again = parse_bench(write_bench(aig))
        assert again.to_truth_tables() == tables


class TestFlowIntegration:
    def test_load_spec_handles_bench(self, tmp_path):
        from repro.flow import load_spec
        path = tmp_path / "c17.bench"
        path.write_text(C17_BENCH)
        tables, _ = load_spec(str(path))
        from repro.bench.revlib import c17
        assert tables == c17()
