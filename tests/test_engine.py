"""Unit tests for the evolution engine (run API, backends, cache).

The engine's headline guarantee is **determinism across worker
counts**: for a fixed seed, ``workers=0``, ``workers=1`` and
``workers=4`` must produce bit-identical results — same fitness key,
same chromosome, same evaluation count.
"""

import json
import os

import pytest

from repro.core.config import RcgpConfig
from repro.core.engine import (
    EvolutionRun,
    FitnessCache,
    InlineBackend,
    ProcessPoolBackend,
    TelemetryWriter,
    child_seed,
    decode_genome,
    encode_genome,
    parallel_safe,
    read_telemetry,
)
from repro.core.evolution import evolve
from repro.core.fitness import Evaluator, Fitness
from repro.core.restart import (
    evolve_with_checkpoints,
    load_checkpoint,
    multi_start,
    save_checkpoint,
)
from repro.core.synthesis import initialize_netlist
from repro.logic.truth_table import TruthTable, tabulate_word


def _decoder_spec():
    return tabulate_word(lambda x: 1 << x, 2, 4)


def _xor_spec():
    return [TruthTable.from_function(lambda a, b: a ^ b, 2)]


class TestGenomeCodec:
    def test_round_trip_preserves_structure_and_function(self):
        spec = _decoder_spec()
        netlist = initialize_netlist(spec, "decoder")
        genome = encode_genome(netlist)
        assert isinstance(genome, tuple)
        assert all(isinstance(v, int) for v in genome)
        back = decode_genome(genome)
        assert back.describe() == netlist.describe()
        assert back.to_truth_tables() == netlist.to_truth_tables()

    def test_genome_is_hashable_cache_key(self):
        netlist = initialize_netlist(_xor_spec())
        assert hash(encode_genome(netlist)) == hash(encode_genome(netlist))

    def test_child_seed_deterministic_and_spread(self):
        a = child_seed(7, 3, 0)
        assert a == child_seed(7, 3, 0)
        neighbours = {child_seed(7, 3, 1), child_seed(7, 4, 0),
                      child_seed(8, 3, 0)}
        assert a not in neighbours and len(neighbours) == 3


class TestConfigSerialization:
    def test_to_dict_covers_every_field(self):
        import dataclasses
        config = RcgpConfig()
        data = config.to_dict()
        assert set(data) == {f.name for f in dataclasses.fields(RcgpConfig)}

    def test_round_trip_preserves_every_field(self):
        config = RcgpConfig(
            generations=123, offspring=7, mutation_rate=0.25,
            max_mutated_genes=3, seed=42, shrink="never",
            exhaustive_input_limit=9, simulation_patterns=64,
            verify_with_sat=False, verify_method="bdd",
            sat_conflict_budget=777, stagnation_limit=55,
            time_budget=1.5, count_buffers_in_fitness=False,
            simplify_wires=False, track_history=True, workers=2,
            eval_cache_size=10, telemetry_path="/tmp/t.jsonl",
            enable_output_mutation=False)
        assert RcgpConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        config = RcgpConfig.from_dict({"generations": 5,
                                       "future_knob": "ignored"})
        assert config.generations == 5

    def test_invalid_new_fields_rejected(self):
        with pytest.raises(ValueError):
            RcgpConfig(workers=-1)
        with pytest.raises(ValueError):
            RcgpConfig(eval_cache_size=-1)


class TestFitnessTotalOrder:
    def test_equality_follows_key(self):
        # Distinct non-functional fitnesses with equal keys are equal.
        assert Fitness(0.5, 3, 0, 0) == Fitness(0.5, 7, 1, 2)
        assert Fitness(1.0, 3, 2, 1) == Fitness(1.0, 3, 2, 1)
        assert Fitness(1.0, 3, 2, 1) != Fitness(1.0, 4, 2, 1)

    def test_order_is_total_and_consistent(self):
        a, b = Fitness(1.0, 3, 2, 1), Fitness(1.0, 3, 2, 1)
        assert a >= b and a <= b and a == b
        assert not a > b and not a < b
        worse = Fitness(1.0, 4, 0, 0)
        assert worse < a and worse <= a and a > worse and a >= worse

    def test_hash_consistent_with_equality(self):
        assert hash(Fitness(0.5, 3, 0, 0)) == hash(Fitness(0.5, 9, 9, 9))
        assert len({Fitness(1.0, 2, 1, 0), Fitness(1.0, 2, 1, 0)}) == 1

    def test_sorting_matches_key_order(self):
        items = [Fitness(1.0, 5, 0, 0), Fitness(0.5), Fitness(1.0, 2, 0, 0)]
        assert sorted(items) == sorted(items, key=lambda f: f.key())

    def test_non_fitness_comparison(self):
        assert Fitness(1.0) != object()
        with pytest.raises(TypeError):
            Fitness(1.0) < 3


class TestFitnessCache:
    def test_hit_miss_accounting_and_lru_bound(self):
        cache = FitnessCache(maxsize=2)
        f = Fitness(1.0, 1, 1, 1)
        assert cache.get((1,)) is None
        cache.put((1,), f)
        assert cache.get((1,)) == f
        assert cache.hits == 1 and cache.misses == 1
        cache.put((2,), f)
        cache.put((3,), f)          # evicts (1,), the least recent
        assert len(cache) == 2
        assert cache.get((1,)) is None

    def test_disabled_cache_stores_nothing(self):
        cache = FitnessCache(maxsize=0)
        cache.put((1,), Fitness(1.0))
        assert len(cache) == 0 and not cache.enabled


class TestDeterminismAcrossWorkers:
    """Same seed + spec must be bit-identical for workers in {0, 1, 4}."""

    def _run(self, workers, **overrides):
        spec = _decoder_spec()
        initial = initialize_netlist(spec, "decoder")
        kwargs = dict(generations=50, mutation_rate=0.1, seed=11,
                      offspring=4, shrink="always", workers=workers)
        kwargs.update(overrides)
        return EvolutionRun(spec, RcgpConfig(**kwargs),
                            initial=initial).run()

    def test_serial_and_parallel_bit_identical(self):
        serial = self._run(workers=0)
        one = self._run(workers=1)
        pooled = self._run(workers=4)
        assert serial.backend == "inline"
        assert one.backend == "inline"
        assert pooled.backend == "process-pool"
        assert serial.fitness.key() == one.fitness.key() == \
            pooled.fitness.key()
        assert serial.netlist.describe() == one.netlist.describe() == \
            pooled.netlist.describe()
        assert serial.evaluations == one.evaluations == pooled.evaluations
        assert serial.cache_hits == one.cache_hits == pooled.cache_hits

    def test_unsafe_parallel_falls_back_to_inline(self):
        # Sampled simulation with SAT feedback mutates the evaluator, so
        # the engine must refuse the pool and evaluate inline.
        result = self._run(workers=4, exhaustive_input_limit=1,
                           simulation_patterns=16, generations=5)
        assert result.backend == "inline"

    def test_parallel_safe_predicate(self):
        spec = _decoder_spec()
        exhaustive = RcgpConfig(seed=1)
        assert parallel_safe(Evaluator(spec, exhaustive), exhaustive)
        sampled_sat = RcgpConfig(seed=1, exhaustive_input_limit=1,
                                 simulation_patterns=8)
        assert not parallel_safe(Evaluator(spec, sampled_sat), sampled_sat)
        sampled_pure = RcgpConfig(seed=1, exhaustive_input_limit=1,
                                  simulation_patterns=8,
                                  verify_with_sat=False)
        assert parallel_safe(Evaluator(spec, sampled_pure), sampled_pure)
        unseeded = RcgpConfig(exhaustive_input_limit=1,
                              simulation_patterns=8, verify_with_sat=False)
        assert not parallel_safe(Evaluator(spec, unseeded), unseeded)


class TestCacheAccounting:
    def test_duplicate_mutants_hit_the_cache(self):
        spec = _xor_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=200, offspring=8, seed=3,
                            max_mutated_genes=1, mutation_rate=1.0)
        result = EvolutionRun(spec, config, initial=initial).run()
        assert result.cache_hits > 0
        # Every offspring is either a cache hit or an evaluation; the
        # few extra evaluations are the parent/finalize checks.
        offspring_total = result.generations * config.offspring
        assert result.evaluations + result.cache_hits >= offspring_total

    def test_cache_disabled_reports_zero_hits(self):
        spec = _xor_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=100, offspring=8, seed=3,
                            max_mutated_genes=1, mutation_rate=1.0,
                            eval_cache_size=0)
        result = EvolutionRun(spec, config, initial=initial).run()
        assert result.cache_hits == 0

    def test_cache_does_not_change_results(self):
        spec = _decoder_spec()
        initial = initialize_netlist(spec)
        base = dict(generations=80, offspring=6, seed=13,
                    mutation_rate=0.1, shrink="always")
        cached = EvolutionRun(spec, RcgpConfig(**base),
                              initial=initial).run()
        uncached = EvolutionRun(spec, RcgpConfig(eval_cache_size=0, **base),
                                initial=initial).run()
        assert cached.fitness.key() == uncached.fitness.key()
        assert cached.netlist.describe() == uncached.netlist.describe()


class TestTelemetry:
    def test_jsonl_events_emitted(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        spec = _xor_spec()
        initial = initialize_netlist(spec)
        config = RcgpConfig(generations=20, seed=5, telemetry_path=path)
        result = EvolutionRun(spec, config, initial=initial).run()
        events = read_telemetry(path)
        assert events[0]["event"] == "run_start"
        assert events[0]["workers"] == 0
        assert events[-1]["event"] == "run_end"
        assert events[-1]["evaluations"] == result.evaluations
        generations = [e for e in events if e["event"] == "generation"]
        assert len(generations) == result.generations
        sample = generations[0]
        for field in ("generation", "best_key", "evaluations",
                      "cache_hits", "sat_calls", "wall_time"):
            assert field in sample

    def test_writer_accepts_open_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as handle:
            writer = TelemetryWriter(handle)
            writer.emit("ping", value=1)
            writer.close()          # must not close a borrowed handle
            assert not handle.closed
        assert json.loads(path.read_text())["value"] == 1

    def test_evolve_shim_accepts_telemetry_config(self, tmp_path):
        path = str(tmp_path / "shim.jsonl")
        spec = _xor_spec()
        initial = initialize_netlist(spec)
        evolve(initial, spec, RcgpConfig(generations=5, seed=1,
                                         telemetry_path=path))
        assert os.path.exists(path)


class TestCheckpointConfigRoundTrip:
    def test_v2_checkpoint_stores_full_config(self, tmp_path):
        spec = _decoder_spec()
        netlist = initialize_netlist(spec)
        config = RcgpConfig(generations=500, time_budget=9.0,
                            stagnation_limit=77, verify_with_sat=False,
                            sat_conflict_budget=123)
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(path, netlist, 42, config)
        loaded, done, stored = load_checkpoint(path, with_config=True)
        assert done == 42
        assert RcgpConfig.from_dict(stored) == config
        with open(path) as handle:
            assert json.load(handle)["version"] == 2

    def test_resume_with_matching_config_is_silent(self, tmp_path):
        import warnings
        spec = _decoder_spec()
        path = str(tmp_path / "run.json")
        config = RcgpConfig(generations=100, mutation_rate=0.1, seed=4,
                            shrink="always")
        evolve_with_checkpoints(spec, config, path, slice_generations=100)
        bigger = config.replace(generations=150)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            evolve_with_checkpoints(spec, bigger, path,
                                    slice_generations=100)

    def test_resume_with_mismatched_config_warns(self, tmp_path):
        spec = _decoder_spec()
        path = str(tmp_path / "run.json")
        config = RcgpConfig(generations=100, mutation_rate=0.1, seed=4,
                            shrink="always")
        evolve_with_checkpoints(spec, config, path, slice_generations=100)
        changed = config.replace(generations=150, mutation_rate=0.5,
                                 shrink="never")
        with pytest.warns(RuntimeWarning, match="mutation_rate"):
            evolve_with_checkpoints(spec, changed, path,
                                    slice_generations=100)

    def test_v1_checkpoint_still_loads_and_warns(self, tmp_path):
        from repro.io.rqfp_json import netlist_to_dict
        spec = _decoder_spec()
        netlist = initialize_netlist(spec)
        path = tmp_path / "old.json"
        path.write_text(json.dumps({
            "format": "rcgp-checkpoint", "version": 1,
            "generations_done": 10,
            "config": {"mutation_rate": 0.1, "offspring": 4},
            "netlist": netlist_to_dict(netlist),
        }))
        loaded, done, stored = load_checkpoint(str(path), with_config=True)
        assert done == 10 and stored is None
        config = RcgpConfig(generations=10, mutation_rate=0.1, seed=4)
        with pytest.warns(RuntimeWarning, match="predates"):
            evolve_with_checkpoints(spec, config, str(path),
                                    slice_generations=10)


class TestCheckpointForwardCompat:
    def test_v2_checkpoint_missing_new_fields_resumes_with_warning(
            self, tmp_path):
        # A v2 checkpoint written before newer config knobs existed
        # (e.g. `kernel`): resuming must not crash on the absent keys —
        # it warns and proceeds under the live configuration.
        spec = _decoder_spec()
        path = str(tmp_path / "old_v2.json")
        config = RcgpConfig(generations=20, mutation_rate=0.1, seed=4,
                            shrink="always")
        save_checkpoint(path, initialize_netlist(spec), 10, config)
        with open(path) as handle:
            payload = json.load(handle)
        for field in ("kernel", "verify_result", "batch_timeout",
                      "batch_retries"):
            del payload["config"][field]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.warns(RuntimeWarning, match="does not record .*kernel"):
            result = evolve_with_checkpoints(spec, config, path,
                                             slice_generations=10)
        assert result.fitness.functional
        _, done = load_checkpoint(path)
        assert done >= 20  # the resumed slice actually ran and saved

    def test_round_trip_restores_new_fields(self, tmp_path):
        spec = _decoder_spec()
        path = str(tmp_path / "new.json")
        config = RcgpConfig(generations=20, seed=4, verify_result=True,
                            batch_timeout=1.5, batch_retries=7)
        save_checkpoint(path, initialize_netlist(spec), 10, config)
        _, _, stored = load_checkpoint(path, with_config=True)
        restored = RcgpConfig.from_dict(stored)
        assert restored.verify_result is True
        assert restored.batch_timeout == 1.5
        assert restored.batch_retries == 7
        assert restored == config


class TestMultiStartFullConfig:
    def test_stagnation_limit_survives_fan_out(self):
        # Before the redesign multi_start silently dropped
        # stagnation_limit (among others): workers ran the full budget.
        spec = _xor_spec()
        config = RcgpConfig(generations=500_000, mutation_rate=0.1,
                            stagnation_limit=10, shrink="always")
        import time
        start = time.monotonic()
        best, keys = multi_start(spec, seeds=[1, 2], config=config)
        assert time.monotonic() - start < 60.0
        assert best.to_truth_tables() == spec
        assert len(keys) == 2

    def test_nested_parallelism_is_disabled_per_start(self):
        # workers in the fanned-out config must not spawn pools inside
        # pool workers; the run still completes correctly.
        spec = _xor_spec()
        config = RcgpConfig(generations=60, mutation_rate=0.1, workers=4,
                            shrink="always")
        best, keys = multi_start(spec, seeds=[1, 2], config=config,
                                 parallel=True)
        assert best.to_truth_tables() == spec


class TestEngineBackends:
    def test_inline_backend_matches_evaluator(self):
        spec = _decoder_spec()
        evaluator = Evaluator(spec, RcgpConfig())
        netlist = initialize_netlist(spec)
        backend = InlineBackend(evaluator)
        [fitness] = backend.evaluate([encode_genome(netlist)])
        assert fitness == Evaluator(spec, RcgpConfig()).evaluate(netlist)

    def test_pool_backend_rejects_single_worker(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(_decoder_spec(), RcgpConfig(), workers=1)

    def test_pool_backend_preserves_batch_order(self):
        spec = _decoder_spec()
        good = initialize_netlist(spec)
        bad = good.copy()
        bad.outputs = list(reversed(bad.outputs))
        backend = ProcessPoolBackend(spec, RcgpConfig(), workers=2)
        try:
            genomes = [encode_genome(good), encode_genome(bad),
                       encode_genome(good)]
            results = backend.evaluate(genomes)
            assert results[0].functional and results[2].functional
            assert not results[1].functional
        finally:
            backend.close()
