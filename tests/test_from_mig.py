"""Unit + property tests for MIG → RQFP conversion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.random_circuits import random_mig
from repro.logic.truth_table import TruthTable
from repro.networks.aig import CONST1, lit, lit_not
from repro.networks.convert import tables_to_mig
from repro.networks.mig import Mig
from repro.rqfp.from_mig import mig_to_rqfp
from repro.rqfp.splitters import insert_splitters


class TestBasicConversion:
    def test_single_majority(self):
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        mig.add_output(mig.add_maj(a, b, c))
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 1
        assert netlist.to_truth_tables() == mig.to_truth_tables()

    def test_complemented_fanin_is_free(self):
        """NOT on an internal edge must not cost a gate."""
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        inner = mig.add_maj(a, b, c)
        mig.add_output(mig.add_maj(lit_not(inner), a, CONST1))
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 2
        assert netlist.to_truth_tables() == mig.to_truth_tables()

    def test_complemented_po_materializes_by_self_duality(self):
        """A NAND output flips the producing majority's inverter bits
        instead of paying an inverter gate (M self-duality)."""
        mig = Mig(2)
        a, b = (lit(n) for n in mig.inputs)
        mig.add_output(lit_not(mig.add_and(a, b)))  # NAND
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 1
        assert netlist.to_truth_tables() == mig.to_truth_tables()

    def test_mixed_po_polarities_cost_one_inverter(self):
        """AND and NAND of the same node: plain materialization plus a
        single inverter gate for the complemented PO."""
        mig = Mig(2)
        a, b = (lit(n) for n in mig.inputs)
        conj = mig.add_and(a, b)
        mig.add_output(conj, "and")
        mig.add_output(lit_not(conj), "nand")
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 2
        assert netlist.to_truth_tables() == mig.to_truth_tables()

    def test_inverter_gate_shared_across_pos(self):
        """Same complemented polarity on two POs shares one gate's ports."""
        mig = Mig(2)
        a, b = (lit(n) for n in mig.inputs)
        nand = lit_not(mig.add_and(a, b))
        mig.add_output(nand, "y0")
        mig.add_output(nand, "y1")
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 1  # NAND materialized directly
        tts = netlist.to_truth_tables()
        assert tts[0] == tts[1]

    def test_constant_outputs(self):
        mig = Mig(1)
        mig.add_output(CONST1, "one")       # literal 1 = const true
        mig.add_output(0, "zero")           # literal 0 = const false
        netlist = mig_to_rqfp(mig)
        tables = netlist.to_truth_tables()
        assert tables[0] == TruthTable.constant(True, 1)
        assert tables[1] == TruthTable.constant(False, 1)

    def test_pi_passthrough(self):
        mig = Mig(2)
        mig.add_output(lit(mig.inputs[1]))
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 0
        assert netlist.to_truth_tables() == [TruthTable.variable(1, 2)]

    def test_complemented_pi_output(self):
        mig = Mig(1)
        mig.add_output(lit_not(lit(mig.inputs[0])))
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 1  # explicit inverter gate
        assert netlist.to_truth_tables() == [~TruthTable.variable(0, 1)]


class TestPacking:
    def test_same_support_nodes_packed(self):
        """Three majorities over the same children share one RQFP gate."""
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        m1 = mig.add_maj(a, b, c)
        m2 = mig.add_maj(lit_not(a), b, c)
        m3 = mig.add_maj(a, lit_not(b), c)
        mig.add_output(m1)
        mig.add_output(m2)
        mig.add_output(m3)
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 1
        assert netlist.to_truth_tables() == mig.to_truth_tables()

    def test_fourth_same_support_node_needs_second_gate(self):
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        outs = [mig.add_maj(a, b, c),
                mig.add_maj(lit_not(a), b, c),
                mig.add_maj(a, lit_not(b), c),
                mig.add_maj(a, b, lit_not(c))]
        for out in outs:
            mig.add_output(out)
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 2
        assert netlist.to_truth_tables() == mig.to_truth_tables()

    def test_and_specialization_matches_paper(self):
        """§3.1: R(a,b,1) realizes AND on one output with !a+b, a+!b as
        byproducts — our packed conversion of AND reproduces exactly that
        shape (one gate, two garbage outputs)."""
        mig = Mig(2)
        a, b = (lit(n) for n in mig.inputs)
        mig.add_output(mig.add_and(a, b))
        netlist = mig_to_rqfp(mig)
        assert netlist.num_gates == 1
        assert netlist.num_garbage == 2


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 4), st.integers(1, 10), st.integers(1, 3),
       st.integers(0, 2 ** 31))
def test_conversion_function_invariant(num_inputs, num_gates, num_outputs,
                                       seed):
    mig = random_mig(num_inputs, num_gates, num_outputs, random.Random(seed))
    netlist = mig_to_rqfp(mig)
    assert netlist.to_truth_tables() == mig.to_truth_tables()
    legal = insert_splitters(netlist)
    legal.validate(require_single_fanout=True)
    assert legal.to_truth_tables() == mig.to_truth_tables()


def test_full_pipeline_on_spec(random_tables):
    tables = random_tables(4, 3)
    mig = tables_to_mig(tables)
    netlist = insert_splitters(mig_to_rqfp(mig))
    assert netlist.to_truth_tables() == tables
