"""Unit tests for the CLI and the file-level flow front-end."""

import json
import os

import pytest

from repro.cli import main
from repro.errors import ParseError
from repro.flow import load_spec, synthesize_file
from repro.io.rqfp_json import read_rqfp_json
from repro.logic.truth_table import TruthTable

AND_BLIF = """.model andgate
.inputs a b
.outputs y
.names a b y
11 1
.end
"""

XOR_V = """module xorm(a, b, y);
  input a, b;
  output y;
  assign y = a ^ b;
endmodule
"""


@pytest.fixture
def blif_file(tmp_path):
    path = tmp_path / "and.blif"
    path.write_text(AND_BLIF)
    return str(path)


class TestLoadSpec:
    def test_blif(self, blif_file):
        tables, name = load_spec(blif_file)
        assert name == "andgate"
        assert tables == [TruthTable.from_function(lambda a, b: a & b, 2)]

    def test_verilog(self, tmp_path):
        path = tmp_path / "xor.v"
        path.write_text(XOR_V)
        tables, name = load_spec(str(path))
        assert name == "xorm"
        assert tables == [TruthTable.from_function(lambda a, b: a ^ b, 2)]

    def test_pla(self, tmp_path):
        path = tmp_path / "f.pla"
        path.write_text(".i 2\n.o 1\n11 1\n.e\n")
        tables, name = load_spec(str(path))
        assert name == "f"
        assert tables[0].count_ones() == 1

    def test_real(self, tmp_path):
        path = tmp_path / "toffoli.real"
        path.write_text(".numvars 3\n.variables a b c\n.begin\nt3 a b c\n.end\n")
        tables, _ = load_spec(str(path))
        assert len(tables) == 3

    def test_aag(self, tmp_path):
        path = tmp_path / "g.aag"
        path.write_text("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n")
        tables, _ = load_spec(str(path))
        assert tables[0] == TruthTable.from_function(lambda a, b: a & b, 2)

    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "x.xyz"
        path.write_text("")
        with pytest.raises(ParseError):
            load_spec(str(path))

    def test_binary_aiger_supported(self, tmp_path):
        from repro.io.aiger import write_aiger_binary
        from repro.networks.convert import tables_to_aig
        aig = tables_to_aig([TruthTable.from_function(lambda a, b: a | b, 2)])
        path = tmp_path / "x.aig"
        path.write_bytes(write_aiger_binary(aig))
        tables, _ = load_spec(str(path))
        assert tables == aig.to_truth_tables()

    def test_empty_aiger_rejected(self, tmp_path):
        path = tmp_path / "x.aig"
        path.write_text("")
        with pytest.raises(ParseError):
            load_spec(str(path))


class TestSynthesizeFile:
    def test_end_to_end(self, blif_file):
        from repro.core.config import RcgpConfig
        result = synthesize_file(blif_file,
                                 RcgpConfig(generations=100, seed=1))
        assert result.verify()
        assert result.netlist.name == "andgate"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "decoder_2_4" in out and "intdiv10" in out

    def test_bench_decoder(self, capsys, tmp_path):
        out_path = str(tmp_path / "decoder.json")
        rc = main(["bench", "decoder_2_4", "--generations", "100",
                   "--seed", "3", "-o", out_path, "-v"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified      : True" in out
        netlist = read_rqfp_json(out_path)
        assert netlist.num_inputs == 2

    def test_synth_blif(self, capsys, blif_file):
        rc = main(["synth", blif_file, "--generations", "50", "--seed", "2"])
        assert rc == 0
        assert "rcgp" in capsys.readouterr().out

    def test_exact_and_like_benchmark(self, capsys):
        rc = main(["exact", "decoder_2_4", "--conflicts", "30",
                   "--max-gates", "2"])
        assert rc == 2  # budget exhausted -> timeout path
        assert "timeout" in capsys.readouterr().out

    def test_unknown_benchmark_errors(self, capsys):
        with pytest.raises(KeyError):
            main(["bench", "not_a_benchmark"])

    def test_table_runs_subset(self, capsys, monkeypatch):
        monkeypatch.setenv("RCGP_BENCH_GENERATIONS", "60")
        rc = main(["table", "1", "decoder_2_4", "--no-exact"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "decoder_2_4" in out
        assert "measured" in out


class TestCliVerifyStats:
    def test_verify_equivalent(self, capsys, tmp_path, blif_file):
        out_path = str(tmp_path / "and.json")
        assert main(["bench", "decoder_2_4", "--generations", "50",
                     "--seed", "4", "-o", str(tmp_path / "dec.json")]) == 0
        # verify against a matching design: write decoder as PLA
        pla = tmp_path / "dec.pla"
        pla.write_text(".i 2\n.o 4\n00 1000\n10 0100\n01 0010\n11 0001\n.e\n")
        capsys.readouterr()
        rc = main(["verify", str(tmp_path / "dec.json"), str(pla)])
        out = capsys.readouterr().out
        assert rc == 0 and "EQUIVALENT" in out

    def test_verify_detects_mismatch(self, capsys, tmp_path):
        assert main(["bench", "decoder_2_4", "--generations", "30",
                     "--seed", "5", "-o", str(tmp_path / "dec.json")]) == 0
        wrong = tmp_path / "wrong.pla"
        wrong.write_text(".i 2\n.o 4\n00 0100\n10 1000\n01 0010\n11 0001\n.e\n")
        capsys.readouterr()
        rc = main(["verify", str(tmp_path / "dec.json"), str(wrong)])
        out = capsys.readouterr().out
        assert rc == 1 and "NOT EQUIVALENT" in out

    def test_verify_interface_mismatch(self, capsys, tmp_path, blif_file):
        assert main(["bench", "decoder_2_4", "--generations", "20",
                     "--seed", "6", "-o", str(tmp_path / "dec.json")]) == 0
        capsys.readouterr()
        rc = main(["verify", str(tmp_path / "dec.json"), blif_file])
        assert rc == 1
        assert "mismatch" in capsys.readouterr().out

    def test_stats(self, capsys, tmp_path):
        assert main(["bench", "full_adder", "--generations", "80",
                     "--seed", "7", "-o", str(tmp_path / "fa.json")]) == 0
        capsys.readouterr()
        rc = main(["stats", str(tmp_path / "fa.json")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "JJs" in out and "clean" in out
