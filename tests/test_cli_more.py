"""Additional CLI coverage: sweep, table 2, verify-method plumbing,
stats on rule-violating netlists."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io.rqfp_json import write_rqfp_json
from repro.rqfp.gate import NORMAL_CONFIG
from repro.rqfp.netlist import CONST_PORT, RqfpNetlist


class TestSweepCommand:
    def test_sweep_prints_summary(self, capsys):
        rc = main(["sweep", "decoder_2_4", "--seeds", "2",
                   "--generations", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "decoder_2_4 over seeds [0, 1]" in out
        assert "n_r" in out and "JJs" in out

    def test_sweep_extra_benchmark(self, capsys):
        rc = main(["sweep", "adder2", "--seeds", "2",
                   "--generations", "40"])
        assert rc == 0
        assert "adder2" in capsys.readouterr().out


class TestTable2Command:
    def test_subset_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("RCGP_BENCH_GENERATIONS", "50")
        rc = main(["table", "2", "graycode6", "--no-exact"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "graycode6" in out


class TestVerifyMethodPlumbing:
    def test_bdd_method_accepted(self, capsys):
        rc = main(["bench", "decoder_2_4", "--generations", "40",
                   "--seed", "1", "--verify-method", "bdd"])
        assert rc == 0

    def test_bad_method_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["bench", "x", "--verify-method", "cec"])


class TestStatsOnViolations:
    def test_fanout_violating_netlist_reports_dirty(self, capsys, tmp_path):
        netlist = RqfpNetlist(1, "dirty")
        gate = netlist.add_gate(1, 1, CONST_PORT, NORMAL_CONFIG)  # PI twice
        netlist.add_output(netlist.gate_output_port(gate, 0))
        path = tmp_path / "dirty.json"
        path.write_text(write_rqfp_json(netlist))
        rc = main(["stats", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "fan-out" in out


class TestParserHelp:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("synth", "bench", "exact", "table", "sweep",
                        "verify", "stats", "list"):
            assert command in text
