"""Unit tests for the AIG optimization passes (resyn2 analogue)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.truth_table import TruthTable
from repro.networks.aig import Aig, lit, lit_not
from repro.networks.convert import tables_to_aig
from repro.opt.aig_opt import balance, collapse_refactor, refactor, resyn2


def _chain_aig(n):
    """Deliberately unbalanced AND chain over n inputs."""
    aig = Aig(n)
    acc = lit(aig.inputs[0])
    for node in aig.inputs[1:]:
        acc = aig.add_and(acc, lit(node))
    aig.add_output(acc)
    return aig


class TestBalance:
    def test_chain_becomes_log_depth(self):
        aig = _chain_aig(8)
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert balanced.to_truth_tables() == aig.to_truth_tables()

    def test_preserves_function_random(self, random_tables):
        for _ in range(10):
            tables = random_tables(4, 2)
            aig = tables_to_aig(tables)
            assert balance(aig).to_truth_tables() == tables

    def test_respects_shared_nodes(self):
        """A multiply-used conjunct must not be duplicated destructively."""
        aig = Aig(3)
        a, b, c = (lit(n) for n in aig.inputs)
        ab = aig.add_and(a, b)
        aig.add_output(aig.add_and(ab, c))
        aig.add_output(lit_not(ab))
        balanced = balance(aig)
        assert balanced.to_truth_tables() == aig.to_truth_tables()


class TestRefactor:
    def test_redundant_logic_removed(self):
        """(a&b) | (a&!b) should refactor to a."""
        aig = Aig(2)
        a, b = (lit(n) for n in aig.inputs)
        redundant = aig.add_or(aig.add_and(a, b), aig.add_and(a, lit_not(b)))
        aig.add_output(redundant)
        improved = refactor(aig)
        assert improved.to_truth_tables() == aig.to_truth_tables()
        assert improved.size() == 0  # collapses to the input wire

    def test_never_grows(self, random_tables):
        for _ in range(10):
            tables = random_tables(5, 2)
            aig = tables_to_aig(tables)
            out = refactor(aig)
            assert out.size() <= aig.size()
            assert out.to_truth_tables() == tables


class TestCollapseRefactor:
    def test_shrinks_padded_network(self):
        aig = Aig(3)
        a, b, c = (lit(n) for n in aig.inputs)
        # Build (a XOR a XOR b...) noise realizing just b & c.
        noisy = aig.add_and(aig.add_or(aig.add_and(b, c), aig.add_and(b, c)),
                            aig.add_or(c, aig.add_and(b, c)))
        aig.add_output(noisy)
        out = collapse_refactor(aig)
        assert out.to_truth_tables() == aig.to_truth_tables()
        assert out.size() <= aig.size()

    def test_skips_wide_inputs(self):
        aig = Aig(20)
        aig.add_output(lit(aig.inputs[0]))
        assert collapse_refactor(aig, max_inputs=14) is aig


class TestResyn2:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 5), st.data())
    def test_preserves_function(self, n, data):
        bits = data.draw(st.integers(0, (1 << (1 << n)) - 1))
        tables = [TruthTable(n, bits)]
        aig = tables_to_aig(tables)
        assert resyn2(aig).to_truth_tables() == tables

    def test_never_worse_than_input(self, random_tables):
        tables = random_tables(5, 3)
        aig = tables_to_aig(tables)
        out = resyn2(aig)
        assert out.size() <= aig.size()
