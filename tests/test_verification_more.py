"""Negative verification tests: every single-gene corruption of a
synthesized netlist must be caught by both formal backends."""

import random

import pytest

from repro.core.config import RcgpConfig
from repro.core.synthesis import initialize_netlist
from repro.logic.bdd import bdd_equivalent
from repro.logic.truth_table import tabulate_word
from repro.sat.equivalence import check_against_tables


def _spec():
    return tabulate_word(lambda x: 1 << x, 2, 4)


def _corruptions(netlist, rng, count=8):
    """Yield mutated copies differing in one gene (config bit flips)."""
    for _ in range(count):
        mutant = netlist.copy()
        gate = rng.randrange(mutant.num_gates)
        mutant.gates[gate].config ^= 1 << rng.randrange(9)
        yield mutant


class TestSingleGeneCorruptions:
    def test_backends_agree_on_every_mutant(self, rng):
        spec = _spec()
        netlist = initialize_netlist(spec, "decoder_2_4")
        for mutant in _corruptions(netlist, rng, count=12):
            truth = mutant.to_truth_tables() == spec
            sat = check_against_tables(mutant.encoder(), spec)
            assert sat.equivalent is truth
            assert bdd_equivalent(mutant, spec) is truth
            if sat.equivalent is False:
                cex = sat.counterexample
                got = mutant.simulate([(cex >> i) & 1 for i in range(2)], 1)
                want = [t.value(cex) for t in spec]
                assert got != want, "counterexample must actually differ"

    def test_input_rewire_corruptions(self, rng):
        """Rewiring one input to the constant is usually caught too."""
        spec = _spec()
        netlist = initialize_netlist(spec, "decoder_2_4")
        for _ in range(8):
            mutant = netlist.copy()
            gate = rng.randrange(mutant.num_gates)
            pos = rng.randrange(3)
            mutant.gates[gate].replace_input(pos, 0)
            truth = mutant.to_truth_tables() == spec
            assert bdd_equivalent(mutant, spec) is truth


class TestBudgetedMiters:
    def test_budget_zero_is_conservative(self):
        """With no conflicts allowed, the miter may only answer if pure
        propagation decides it; UNKNOWN must never claim equivalence."""
        spec = _spec()
        netlist = initialize_netlist(spec)
        result = check_against_tables(netlist.encoder(), spec,
                                      conflict_budget=0)
        assert result.equivalent in (True, None)

    def test_generous_budget_decides(self):
        spec = _spec()
        netlist = initialize_netlist(spec)
        result = check_against_tables(netlist.encoder(), spec,
                                      conflict_budget=100_000)
        assert result.equivalent is True
