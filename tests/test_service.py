"""Tests for the HTTP service layer (`repro.service`).

The headline guarantees, mirroring the in-process scheduler suite:

* **wire-identical results** — a job submitted over HTTP returns the
  bit-identical ``SynthesisResult`` that :func:`repro.api.synthesize`
  produces for the same spec + config, for any slice quantum;
* **kill-and-resume over the wire** — a server killed mid-run reports
  the job ``interrupted``/resumable, and a restarted server over the
  same store converges to the identical final result;
* **operability** — content-hash dedup, 429 backpressure on a full
  queue, typed error → HTTP status mapping, and ``/metrics`` totals
  that agree with the per-job result counters.
"""

import json

import pytest

from repro.api import synthesize
from repro.core.config import RcgpConfig
from repro.errors import (JobNotFound, JobNotReady, QueueFull, ReproError,
                          ServiceError)
from repro.io.rqfp_json import netlist_to_dict
from repro.jobs import JobStore, Scheduler
from repro.logic.truth_table import TruthTable, tabulate_word
from repro.service import (INTERRUPTED, QUEUED, ServiceClient,
                           ServiceServer, route_exists, status_for)


def _decoder_spec():
    return tabulate_word(lambda x: 1 << x, 2, 4)


def _xor_and_spec():
    return [TruthTable.from_function(lambda a, b: a ^ b, 2),
            TruthTable.from_function(lambda a, b: a & b, 2)]


def _config(**overrides):
    base = dict(generations=150, seed=9, shrink="always",
                mutation_rate=0.08, max_mutated_genes=8)
    base.update(overrides)
    return RcgpConfig(**base)


@pytest.fixture
def server():
    with ServiceServer(None, port=0, quantum=25).start() as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=10.0)


class TestRoutingTable:
    def test_known_routes_match(self):
        job = "a" * 16
        assert route_exists("POST", "/v1/jobs")
        assert route_exists("GET", "/v1/jobs")
        assert route_exists("GET", f"/v1/jobs/{job}")
        assert route_exists("GET", f"/v1/jobs/{job}/result")
        assert route_exists("GET", f"/v1/jobs/{job}/telemetry")
        assert route_exists("GET", "/healthz")
        assert route_exists("GET", "/metrics")

    def test_unknown_routes_do_not(self):
        assert not route_exists("GET", "/v2/jobs")
        assert not route_exists("DELETE", "/v1/jobs")
        assert not route_exists("GET", "/v1/jobs/NOT-HEX")
        assert not route_exists("GET", "/v1/jobs/abcdef12/logs")

    def test_status_mapping(self):
        assert status_for(JobNotFound("x")) == 404
        assert status_for(JobNotReady("x")) == 409
        assert status_for(QueueFull("x")) == 429
        assert status_for(KeyError("spec")) == 400
        assert status_for(ValueError("x")) == 400
        assert status_for(ReproError("x")) == 500
        assert status_for(RuntimeError("x")) == 500


class TestRoundTrip:
    def test_bit_identical_to_in_process_synthesize(self, client):
        spec, config = _decoder_spec(), _config()
        baseline = synthesize(spec, config)

        info = client.submit(spec, config)
        assert info["state"] in (QUEUED, "pending", "running", "done")
        final = client.wait(info["job_id"], timeout=120)
        assert final["state"] == "done"
        result = client.result(info["job_id"])
        assert netlist_to_dict(result.netlist) == \
            netlist_to_dict(baseline.netlist)
        assert result.evolution.fitness.key() == \
            baseline.evolution.fitness.key()
        assert result.verify()

    def test_resubmit_served_from_store(self, client):
        spec, config = _xor_and_spec(), _config(generations=60)
        info = client.submit(spec, config)
        client.wait(info["job_id"], timeout=60)

        again = client.submit(spec, config)
        assert again["job_id"] == info["job_id"]
        assert again["from_store"] is True
        assert again["state"] == "done"
        assert info["job_id"] in client.jobs()

    def test_status_document_fields(self, client):
        spec, config = _xor_and_spec(), _config(generations=60)
        job_id = client.submit(spec, config)["job_id"]
        view = client.wait(job_id, timeout=60)
        assert view["generations"] == 60
        assert view["generations_done"] == 60
        assert view["seed"] == config.seed
        assert view["slices"] >= 1
        assert view["resumable"] is False
        assert view["error"] is None

    def test_metrics_agree_with_result_counters(self, client):
        spec, config = _decoder_spec(), _config(generations=100)
        job_id = client.submit(spec, config)["job_id"]
        client.wait(job_id, timeout=60)
        result = client.result(job_id)

        metrics = client.metrics()
        assert metrics["rcgp_evaluations_total"] == \
            result.evolution.evaluations
        assert metrics["rcgp_cache_hits_total"] == \
            result.evolution.cache_hits
        assert metrics['rcgp_jobs{state="done"}'] == 1
        assert metrics["rcgp_queue_depth"] == 0

    def test_health(self, client):
        from repro import __version__
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == __version__

    def test_telemetry_empty_for_memory_store(self, client):
        spec, config = _xor_and_spec(), _config(generations=60)
        job_id = client.submit(spec, config)["job_id"]
        client.wait(job_id, timeout=60)
        assert client.telemetry(job_id) == []


class TestErrorMapping:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(JobNotFound):
            client.status("d" * 16)
        with pytest.raises(JobNotFound):
            client.telemetry("d" * 16)

    def test_result_before_done_is_409(self, server, client):
        # loop never runs on this server, so the job can't finish.
        server2 = ServiceServer(None, port=0).start(loop=False)
        try:
            c2 = ServiceClient(server2.url, timeout=10.0)
            job_id = c2.submit(_xor_and_spec(),
                               _config(generations=60))["job_id"]
            with pytest.raises(JobNotReady):
                c2.raw_result(job_id)
        finally:
            server2.close()

    def test_malformed_body_is_400(self, client):
        import urllib.error
        import urllib.request
        request = urllib.request.Request(
            client.base_url + "/v1/jobs", data=b'{"nope": 1}',
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["error"]["type"] == "KeyError"

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v2/nothing")
        assert err.value.http_status == 404

    def test_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError):
            client.health()


class TestBackpressure:
    def test_full_queue_answers_429(self):
        server = ServiceServer(None, port=0, max_queue=1).start(loop=False)
        try:
            client = ServiceClient(server.url, timeout=10.0)
            first = client.submit(_xor_and_spec(), _config(seed=1))
            assert first["state"] == QUEUED
            with pytest.raises(QueueFull):
                client.submit(_xor_and_spec(), _config(seed=2))
        finally:
            server.close()

    def test_duplicate_of_queued_job_is_idempotent(self):
        server = ServiceServer(None, port=0, max_queue=1).start(loop=False)
        try:
            client = ServiceClient(server.url, timeout=10.0)
            first = client.submit(_xor_and_spec(), _config(seed=1))
            again = client.submit(_xor_and_spec(), _config(seed=1))
            assert again["job_id"] == first["job_id"]
            assert again["state"] == QUEUED
            assert client.status(first["job_id"])["state"] == QUEUED
        finally:
            server.close()


class TestInterruptedAndResume:
    """Regression: a record left ``running`` by a dead process must be
    reported ``interrupted`` + resumable, not ``running`` forever."""

    def _strand_job(self, tmp_path, spec, config):
        """Advance a job two slices and abandon it mid-run, exactly as
        a SIGKILLed server would: record says ``running``, checkpoint
        exists, no live scheduler owns it."""
        store = str(tmp_path / "store")
        with Scheduler(JobStore(store), quantum=25) as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run(max_ticks=2)
            assert job.state == "running"
        return store, job.id

    def test_stranded_job_reports_interrupted(self, tmp_path):
        spec, config = _decoder_spec(), _config(generations=400)
        store, job_id = self._strand_job(tmp_path, spec, config)

        server = ServiceServer(store, port=0, resume=False)
        server.start(loop=False)
        try:
            view = ServiceClient(server.url, timeout=10.0).status(job_id)
            assert view["state"] == INTERRUPTED
            assert view["resumable"] is True
            assert view["generations_done"] == 50
            assert view["checkpoint_age_seconds"] >= 0.0
        finally:
            server.close()

    def test_restarted_server_resumes_bit_identically(self, tmp_path):
        spec, config = _decoder_spec(), _config(generations=400)
        baseline = synthesize(spec, config)
        store, job_id = self._strand_job(tmp_path, spec, config)

        with ServiceServer(store, port=0, quantum=25).start() as server:
            client = ServiceClient(server.url, timeout=10.0)
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            result = client.result(job_id)
            assert netlist_to_dict(result.netlist) == \
                netlist_to_dict(baseline.netlist)

            # Dedup across the kill: resubmitting the same content hash
            # is answered from the store, no re-evaluation.
            again = client.submit(spec, config)
            assert again["job_id"] == job_id
            assert again["from_store"] is True

            # Disk-backed jobs stream telemetry; the events carry the id.
            events = client.telemetry(job_id)
            assert events and all(e["job_id"] == job_id for e in events)

    def test_graceful_drain_leaves_store_resumable(self, tmp_path):
        spec, config = _decoder_spec(), _config(generations=400)
        baseline = synthesize(spec, config)
        store = str(tmp_path / "store")

        server = ServiceServer(store, port=0, quantum=25).start()
        client = ServiceClient(server.url, timeout=10.0)
        job_id = client.submit(spec, config)["job_id"]
        # Close immediately: the drain finishes (and checkpoints) at
        # most the slice in flight, leaving the rest for a successor.
        server.close()

        with ServiceServer(store, port=0, quantum=25).start() as successor:
            c2 = ServiceClient(successor.url, timeout=10.0)
            final = c2.wait(job_id, timeout=120)
            assert final["state"] == "done"
            result = c2.result(job_id)
            assert netlist_to_dict(result.netlist) == \
                netlist_to_dict(baseline.netlist)
            assert result.verify()


class TestCrashSurfacing:
    """Leases, quarantines and torn streams as seen over the wire."""

    def _strand_job(self, tmp_path, spec, config, *, max_ticks=2):
        store = str(tmp_path / "store")
        with Scheduler(JobStore(store), quantum=25) as scheduler:
            job = scheduler.submit(spec, config)
            scheduler.run(max_ticks=max_ticks)
            assert job.state == "running"
        return store, job.id

    def test_stranded_with_checkpoint_resumes_from_checkpoint(
            self, tmp_path):
        store, job_id = self._strand_job(
            tmp_path, _decoder_spec(), _config(generations=400))
        server = ServiceServer(store, port=0, resume=False)
        server.start(loop=False)
        try:
            view = ServiceClient(server.url, timeout=10.0).status(job_id)
            assert view["state"] == INTERRUPTED
            assert view["resumable"] is True
            assert view["resume_from"] == "checkpoint"
        finally:
            server.close()

    def test_stranded_without_checkpoint_resumes_from_baseline(
            self, tmp_path):
        """A process killed before its first checkpoint leaves a
        ``running`` record and nothing else — still resumable, from
        the deterministic baseline."""
        store = str(tmp_path / "store")
        writer = JobStore(store)
        with Scheduler(writer, quantum=25) as scheduler:
            job = scheduler.submit(_decoder_spec(),
                                   _config(generations=400))
            record = writer.load_record(job.id)
            record["state"] = "running"
            writer.save_record(job.id, record)
        server = ServiceServer(store, port=0, resume=False)
        server.start(loop=False)
        try:
            view = ServiceClient(server.url, timeout=10.0).status(job.id)
            assert view["state"] == INTERRUPTED
            assert view["resumable"] is True
            assert view["resume_from"] == "baseline"
            assert "checkpoint_at" not in view
        finally:
            server.close()

    def test_foreign_live_lease_reports_running_with_owner(
            self, tmp_path):
        store, job_id = self._strand_job(
            tmp_path, _decoder_spec(), _config(generations=400))
        foreign = JobStore(store, owner="other-scheduler")
        assert foreign.acquire_lease(job_id)
        server = ServiceServer(store, port=0, resume=False)
        server.start(loop=False)
        try:
            view = ServiceClient(server.url, timeout=10.0).status(job_id)
            assert view["state"] == "running"
            assert view["resumable"] is False
            assert view["owner"] == "other-scheduler"
            assert view["lease"]["live"] is True
        finally:
            server.close()
            foreign.release_lease(job_id)

    def test_result_torn_after_open_is_typed_500(self, tmp_path):
        store = str(tmp_path / "store")
        with Scheduler(JobStore(store), quantum=25) as scheduler:
            job = scheduler.submit(_xor_and_spec(),
                                   _config(generations=60))
            scheduler.run()
            assert job.state == "done"
        server = ServiceServer(store, port=0, resume=False)
        server.start(loop=False)
        try:
            # Tear the artifact *after* the server's recovery sweep ran:
            # the read path itself must surface typed corruption.
            result_path = tmp_path / "store" / job.id / "result.json"
            result_path.write_bytes(b'{"netlist": [[')
            client = ServiceClient(server.url, timeout=10.0)
            with pytest.raises(ServiceError) as err:
                client.raw_result(job.id)
            assert err.value.http_status == 500
            assert "StoreCorruption" in str(err.value)
        finally:
            server.close()
        # The next open quarantines it; the job re-runs from scratch.
        reopened = JobStore(store)
        assert reopened.quarantined
        assert reopened.load_result(job.id) is None

    def test_torn_telemetry_served_as_valid_jsonl(self, tmp_path):
        from repro.jobs import TELEMETRY_TRUNCATED
        store, job_id = self._strand_job(
            tmp_path, _decoder_spec(), _config(generations=400))
        telemetry = tmp_path / "store" / job_id / "telemetry.jsonl"
        with open(telemetry, "ab") as handle:
            handle.write(b'{"event": "job_sl')   # torn mid-append
        server = ServiceServer(store, port=0, resume=False)
        server.start(loop=False)
        try:
            events = ServiceClient(server.url,
                                   timeout=10.0).telemetry(job_id)
            assert events[-1]["event"] == TELEMETRY_TRUNCATED
            assert events[-1]["dropped_bytes"] > 0
            assert all("event" in event for event in events)
        finally:
            server.close()

    def test_metrics_expose_lease_and_quarantine_counters(self, tmp_path):
        store, job_id = self._strand_job(
            tmp_path, _decoder_spec(), _config(generations=400))
        # One corrupt artifact for the server's sweep to quarantine...
        baseline_path = tmp_path / "store" / job_id / "baseline.json"
        baseline_path.write_bytes(b'{"cost":')
        # ...and one live foreign lease.
        foreign = JobStore(store, owner="other-scheduler")
        assert foreign.acquire_lease(job_id)
        server = ServiceServer(store, port=0, resume=False)
        server.start(loop=False)
        try:
            metrics = ServiceClient(server.url, timeout=10.0).metrics()
            assert metrics["rcgp_store_quarantined_total"] == 1
            assert metrics["rcgp_leases_live"] == 1
            assert metrics["rcgp_lease_takeovers_total"] == 0
            # Lease-aware state gauge: leased elsewhere != interrupted.
            assert metrics['rcgp_jobs{state="running"}'] == 1
        finally:
            server.close()
            foreign.release_lease(job_id)

    def test_client_maps_typed_lease_held_409(self):
        from repro.errors import LeaseHeld
        from repro.service.client import _error_from
        body = json.dumps({"error": {
            "type": "LeaseHeld",
            "message": "job abc is leased by sched-1"}}).encode()
        err = _error_from(409, body)
        assert isinstance(err, LeaseHeld)
        assert err.http_status == 409
        plain = _error_from(409, json.dumps({"error": {
            "type": "JobNotReady", "message": "no result"}}).encode())
        assert isinstance(plain, JobNotReady)
        assert not isinstance(plain, LeaseHeld)

    def test_lease_ttl_threads_through_to_the_store(self, tmp_path):
        server = ServiceServer(str(tmp_path / "store"), port=0,
                               lease_ttl=7.5)
        server.start(loop=False)
        try:
            assert server.session.store.lease_ttl == 7.5
        finally:
            server.close()


class TestClientRetry:
    """Idempotent GETs survive one torn keep-alive connection (server
    restart, LB failover); non-idempotent POSTs never auto-repeat."""

    class _Response:
        def __init__(self, body):
            self._body = body

        def read(self):
            return self._body

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

    def _flaky_urlopen(self, failures, error):
        calls = []

        def urlopen(request, timeout=None):
            calls.append(request.get_method())
            if len(calls) <= failures:
                raise error
            return self._Response(b'{"ok": true}')

        return urlopen, calls

    def test_get_retries_once_on_wrapped_disconnect(self, monkeypatch):
        import http.client
        import urllib.error
        import urllib.request
        from repro.service.client import ServiceClient
        client = ServiceClient("http://127.0.0.1:9")
        monkeypatch.setattr(client, "RETRY_BACKOFF", 0.0)
        error = urllib.error.URLError(
            http.client.RemoteDisconnected("closed mid-keep-alive"))
        urlopen, calls = self._flaky_urlopen(1, error)
        monkeypatch.setattr(urllib.request, "urlopen", urlopen)
        assert client._json("GET", "/healthz") == {"ok": True}
        assert calls == ["GET", "GET"]

    def test_get_retries_once_on_bare_reset(self, monkeypatch):
        import urllib.request
        from repro.service.client import ServiceClient
        client = ServiceClient("http://127.0.0.1:9")
        monkeypatch.setattr(client, "RETRY_BACKOFF", 0.0)
        urlopen, calls = self._flaky_urlopen(
            1, ConnectionResetError("reset mid-body"))
        monkeypatch.setattr(urllib.request, "urlopen", urlopen)
        assert client._json("GET", "/healthz") == {"ok": True}
        assert calls == ["GET", "GET"]

    def test_get_gives_up_after_one_retry(self, monkeypatch):
        import http.client
        import urllib.error
        import urllib.request
        from repro.service.client import ServiceClient
        client = ServiceClient("http://127.0.0.1:9")
        monkeypatch.setattr(client, "RETRY_BACKOFF", 0.0)
        error = urllib.error.URLError(
            http.client.RemoteDisconnected("still down"))
        urlopen, calls = self._flaky_urlopen(10, error)
        monkeypatch.setattr(urllib.request, "urlopen", urlopen)
        with pytest.raises(ServiceError):
            client._json("GET", "/healthz")
        assert calls == ["GET", "GET"]

    def test_get_does_not_retry_other_failures(self, monkeypatch):
        import urllib.error
        import urllib.request
        from repro.service.client import ServiceClient
        client = ServiceClient("http://127.0.0.1:9")
        urlopen, calls = self._flaky_urlopen(
            10, urllib.error.URLError(ConnectionRefusedError("nope")))
        monkeypatch.setattr(urllib.request, "urlopen", urlopen)
        with pytest.raises(ServiceError):
            client._json("GET", "/healthz")
        assert calls == ["GET"]

    def test_post_never_retried(self, monkeypatch):
        import http.client
        import urllib.error
        import urllib.request
        from repro.service.client import ServiceClient
        client = ServiceClient("http://127.0.0.1:9")
        monkeypatch.setattr(client, "RETRY_BACKOFF", 0.0)
        error = urllib.error.URLError(
            http.client.RemoteDisconnected("closed"))
        urlopen, calls = self._flaky_urlopen(10, error)
        monkeypatch.setattr(urllib.request, "urlopen", urlopen)
        with pytest.raises(ServiceError):
            client._json("POST", "/v1/jobs", {"x": 1})
        assert calls == ["POST"]
