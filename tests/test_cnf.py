"""Unit tests for repro.sat.cnf."""

import pytest

from repro.errors import ParseError
from repro.sat.cnf import CNF, negate


class TestCnfBuilding:
    def test_new_vars(self):
        cnf = CNF()
        assert cnf.new_var() == 1
        assert cnf.new_vars(3) == [2, 3, 4]
        assert cnf.num_vars == 4

    def test_add_clause_dedup(self):
        cnf = CNF(2)
        cnf.add_clause([1, 1, 2])
        assert cnf.clauses == [[1, 2]]

    def test_tautology_dropped(self):
        cnf = CNF(1)
        cnf.add_clause([1, -1])
        assert len(cnf) == 0

    def test_zero_literal_rejected(self):
        cnf = CNF(1)
        with pytest.raises(ValueError):
            cnf.add_clause([0])

    def test_out_of_range_literal_rejected(self):
        cnf = CNF(1)
        with pytest.raises(ValueError):
            cnf.add_clause([2])

    def test_assume_true(self):
        cnf = CNF(1)
        cnf.assume_true(-1)
        assert cnf.clauses == [[-1]]


class TestEvaluate:
    def test_satisfied(self):
        cnf = CNF(2)
        cnf.add_clauses([[1, 2], [-1, 2]])
        assert cnf.evaluate({1: False, 2: True})

    def test_unsatisfied(self):
        cnf = CNF(2)
        cnf.add_clauses([[1], [-1]])
        assert not cnf.evaluate({1: True, 2: False})

    def test_missing_vars_default_false(self):
        cnf = CNF(2)
        cnf.add_clause([-1])
        assert cnf.evaluate({})


class TestDimacs:
    def test_round_trip(self):
        cnf = CNF(3)
        cnf.add_clauses([[1, -2], [3], [-1, 2, -3]])
        again = CNF.from_dimacs(cnf.to_dimacs())
        assert again.num_vars == 3
        assert again.clauses == cnf.clauses

    def test_parse_with_comments(self):
        text = "c a comment\np cnf 2 1\n1 -2 0\n"
        cnf = CNF.from_dimacs(text)
        assert cnf.clauses == [[1, -2]]

    def test_parse_missing_header(self):
        with pytest.raises(ParseError):
            CNF.from_dimacs("1 2 0\n")

    def test_parse_bad_problem_line(self):
        with pytest.raises(ParseError):
            CNF.from_dimacs("p sat 2 1\n")

    def test_parse_bad_literal(self):
        with pytest.raises(ParseError):
            CNF.from_dimacs("p cnf 1 1\nx 0\n")

    def test_clause_spanning_lines(self):
        cnf = CNF.from_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert cnf.clauses == [[1, 2, 3]]


def test_negate():
    assert negate([1, -2, 3]) == [-1, 2, -3]
