"""Smoke coverage for the differential fuzz harness itself."""

import os
import sys

import pytest

_TOOLS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tools")
sys.path.insert(0, _TOOLS)

import fuzz_diff  # noqa: E402


class TestFuzzDiff:
    def test_rounds_are_clean(self):
        for round_index in range(4):
            fuzz_diff.run_round(0, round_index)

    def test_round_rng_is_stable_and_independent(self):
        a = fuzz_diff.round_rng(0, 1).getrandbits(64)
        assert a == fuzz_diff.round_rng(0, 1).getrandbits(64)
        assert a != fuzz_diff.round_rng(0, 2).getrandbits(64)
        assert a != fuzz_diff.round_rng(1, 1).getrandbits(64)

    def test_detects_injected_divergence(self, monkeypatch, tmp_path):
        # Sabotage one differential leg; the harness must fail the
        # round, write a replay artifact and exit non-zero.
        monkeypatch.setattr(fuzz_diff.NetlistKernel, "levels",
                            lambda self: [-1])
        with pytest.raises(fuzz_diff.Mismatch):
            fuzz_diff.run_round(0, 0)
        rc = fuzz_diff.main(["--seed", "0", "--only", "0",
                             "--artifact-dir", str(tmp_path)])
        assert rc == 1
        assert (tmp_path / "fuzz_replay_0.json").exists()

    def test_cli_clean_run_exits_zero(self, capsys):
        assert fuzz_diff.main(["--seed", "0", "--rounds", "3"]) == 0
        assert "clean" in capsys.readouterr().out
