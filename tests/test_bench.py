"""Unit tests for the benchmark specifications (Tables 1 & 2 testcases)."""

import pytest

from repro.bench import (
    BENCHMARKS,
    TABLE1_NAMES,
    TABLE2_NAMES,
    get_benchmark,
    table_benchmarks,
)
from repro.bench.reciprocal import intdiv
from repro.bench.revlib import (
    alu,
    c17,
    decoder,
    four_gt_10,
    full_adder,
    graycode,
    ham3,
    hwb,
    mod5adder,
    mux4,
    revlib_4_49,
)
from repro.logic.bitops import popcount
from repro.logic.truth_table import TruthTable


class TestFullAdder:
    def test_arithmetic(self):
        spec = full_adder()
        for t in range(8):
            a, b, cin = t & 1, (t >> 1) & 1, (t >> 2) & 1
            total = a + b + cin
            assert spec[0].value(t) == total & 1
            assert spec[1].value(t) == total >> 1


class TestComparators:
    def test_4gt10(self):
        spec = four_gt_10()
        for x in range(16):
            assert spec[0].value(x) == int(x > 10)


class TestAlu:
    def test_op_select(self):
        spec = alu()[0]
        for x in range(32):
            s1, s0 = x & 1, (x >> 1) & 1
            a, b, c = (x >> 2) & 1, (x >> 3) & 1, (x >> 4) & 1
            op = (s1 << 1) | s0
            want = [a & b, a | b, a ^ b ^ c,
                    (a & b) | (a & c) | (b & c)][op]
            assert spec.value(x) == want


class TestC17:
    def test_matches_nand_netlist(self):
        spec = c17()
        for x in range(32):
            n1, n2, n3, n6, n7 = ((x >> i) & 1 for i in range(5))
            n10 = 1 - (n1 & n3)
            n11 = 1 - (n3 & n6)
            n16 = 1 - (n2 & n11)
            n19 = 1 - (n11 & n7)
            assert spec[0].value(x) == 1 - (n10 & n16)
            assert spec[1].value(x) == 1 - (n16 & n19)


class TestDecoders:
    @pytest.mark.parametrize("bits", [2, 3])
    def test_one_hot(self, bits):
        spec = decoder(bits)
        assert len(spec) == 1 << bits
        for x in range(1 << bits):
            for o, table in enumerate(spec):
                assert table.value(x) == int(o == x)


class TestGraycode:
    @pytest.mark.parametrize("bits", [4, 6])
    def test_adjacent_codes_differ_by_one_bit(self, bits):
        spec = graycode(bits)
        def code(x):
            return sum(spec[i].value(x) << i for i in range(bits))
        for x in range((1 << bits) - 1):
            assert popcount(code(x) ^ code(x + 1)) == 1

    def test_is_bijection(self):
        spec = graycode(4)
        images = {sum(spec[i].value(x) << i for i in range(4))
                  for x in range(16)}
        assert len(images) == 16


class TestPermutations:
    def test_ham3_reversible(self):
        spec = ham3()
        images = {sum(spec[i].value(x) << i for i in range(3))
                  for x in range(8)}
        assert len(images) == 8

    def test_4_49_reversible(self):
        spec = revlib_4_49()
        images = {sum(spec[i].value(x) << i for i in range(4))
                  for x in range(16)}
        assert len(images) == 16


class TestMux4:
    def test_selects_data_line(self):
        spec = mux4()[0]
        for x in range(64):
            sel = x & 3
            data = [(x >> (2 + k)) & 1 for k in range(4)]
            assert spec.value(x) == data[sel]


class TestMod5Adder:
    def test_sum_mod_5(self):
        spec = mod5adder()
        for x in range(64):
            a, b = x & 7, (x >> 3) & 7
            got_a = sum(spec[i].value(x) << i for i in range(3))
            got_s = sum(spec[3 + i].value(x) << i for i in range(3))
            assert got_a == a
            assert got_s == (a + b) % 5


class TestHwb:
    def test_rotation_by_weight(self):
        spec = hwb(8)
        for x in (0, 1, 0b10101010, 255, 0b1000_0001):
            w = popcount(x) % 8
            want = ((x << w) | (x >> (8 - w))) & 0xFF if w else x
            got = sum(spec[i].value(x) << i for i in range(8))
            assert got == want

    def test_hwb_is_permutation(self):
        spec = hwb(4)
        images = {sum(spec[i].value(x) << i for i in range(4))
                  for x in range(16)}
        assert len(images) == 16


class TestIntdiv:
    def test_division_values(self):
        spec = intdiv(4)
        for x in range(1, 16):
            got = sum(spec[i].value(x) << i for i in range(4))
            assert got == 15 // x

    def test_zero_saturates(self):
        spec = intdiv(5)
        got = sum(spec[i].value(0) << i for i in range(5))
        assert got == 31

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            intdiv(0)


class TestRegistry:
    def test_all_rows_present(self):
        assert len(TABLE1_NAMES) == 9
        assert len(TABLE2_NAMES) == 11
        assert len(BENCHMARKS) == 20

    def test_shapes_match_paper(self):
        for name, benchmark in BENCHMARKS.items():
            assert benchmark.num_inputs == benchmark.paper_row["n_pi"], name
            assert benchmark.num_outputs == benchmark.paper_row["n_po"], name

    def test_g_lb_matches_paper_formula(self):
        for benchmark in BENCHMARKS.values():
            expected = max(0, benchmark.num_inputs - benchmark.num_outputs)
            assert benchmark.g_lb == expected

    def test_paper_jj_columns_consistent(self):
        """Published JJs = 24 n_r + 4 n_b in (nearly) every legible row;
        we check rows known to be cleanly scanned."""
        # graycode4's published RCGP row is internally inconsistent
        # (208 JJs vs 24*8 + 4*10 = 232) — a scan artifact — so it is
        # excluded here.
        clean = ["full_adder", "4gt10", "alu", "decoder_2_4",
                 "hwb8", "intdiv4", "intdiv10"]
        for name in clean:
            row = BENCHMARKS[name].paper_row
            for part in ("init", "rcgp"):
                cost = row[part]
                assert cost["JJs"] == 24 * cost["n_r"] + 4 * cost["n_b"], \
                    (name, part)

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")

    def test_table_benchmarks_order(self):
        names = [b.name for b in table_benchmarks(1)]
        assert names == TABLE1_NAMES

    def test_exact_timeout_rows_marked(self):
        """The paper's '\\' rows carry exact=None."""
        for name in ("decoder_3_8", "graycode4", "mux4"):
            assert BENCHMARKS[name].paper_row["exact"] is None
        for name in TABLE2_NAMES:
            assert BENCHMARKS[name].paper_row["exact"] is None
        assert BENCHMARKS["full_adder"].paper_row["exact"] is not None
