"""Unit tests for the AIG network."""

import pytest

from repro.errors import NetlistError
from repro.logic.bitops import full_mask, variable_pattern
from repro.logic.truth_table import TruthTable
from repro.networks.aig import (
    CONST0,
    CONST1,
    Aig,
    lit,
    lit_complement,
    lit_node,
    lit_not,
)


class TestLiterals:
    def test_round_trip(self):
        assert lit(5) == 10
        assert lit(5, True) == 11
        assert lit_node(11) == 5
        assert lit_complement(11) and not lit_complement(10)

    def test_lit_not_involution(self):
        assert lit_not(lit_not(6)) == 6

    def test_constants(self):
        assert CONST0 == 0 and CONST1 == 1
        assert lit_not(CONST0) == CONST1


class TestConstruction:
    def test_inputs_named(self):
        aig = Aig(2)
        assert aig.input_names == ["x0", "x1"]
        assert aig.num_inputs == 2

    def test_and_folding_rules(self):
        aig = Aig(2)
        a, b = lit(aig.inputs[0]), lit(aig.inputs[1])
        assert aig.add_and(a, CONST0) == CONST0
        assert aig.add_and(a, CONST1) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_not(a)) == CONST0
        assert aig.num_ands() == 0

    def test_structural_hashing(self):
        aig = Aig(2)
        a, b = lit(aig.inputs[0]), lit(aig.inputs[1])
        first = aig.add_and(a, b)
        second = aig.add_and(b, a)  # commuted
        assert first == second
        assert aig.num_ands() == 1

    def test_derived_gates(self):
        aig = Aig(3)
        a, b, c = (lit(n) for n in aig.inputs)
        aig.add_output(aig.add_xor(a, b))
        aig.add_output(aig.add_mux(a, b, c))
        aig.add_output(aig.add_maj(a, b, c))
        tts = aig.to_truth_tables()
        assert tts[0] == TruthTable.from_function(lambda x, y, z: x ^ y, 3)
        assert tts[1] == TruthTable.from_function(
            lambda x, y, z: z if x else y, 3)
        assert tts[2] == TruthTable.from_function(
            lambda x, y, z: (x & y) | (x & z) | (y & z), 3)

    def test_and_or_many_balanced(self):
        aig = Aig(5)
        lits = [lit(n) for n in aig.inputs]
        aig.add_output(aig.add_and_many(lits))
        assert aig.depth() == 3  # ceil(log2(5)) = 3
        assert aig.to_truth_tables()[0].count_ones() == 1

    def test_empty_and_many_is_const1(self):
        aig = Aig(1)
        assert aig.add_and_many([]) == CONST1

    def test_bad_literal_rejected(self):
        aig = Aig(1)
        with pytest.raises(NetlistError):
            aig.add_and(lit(99), CONST1)


class TestStructureQueries:
    def _build(self):
        aig = Aig(3)
        a, b, c = (lit(n) for n in aig.inputs)
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        dead = aig.add_and(a, c)  # not connected to any output
        aig.add_output(abc)
        return aig, dead

    def test_reachable_excludes_dead(self):
        aig, dead = self._build()
        assert aig.num_ands() == 3
        assert aig.size() == 2
        assert lit_node(dead) not in aig.reachable_ands()

    def test_cleanup_removes_dead(self):
        aig, _ = self._build()
        clean = aig.cleanup()
        assert clean.size() == clean.num_ands() == 2
        assert clean.to_truth_tables() == aig.to_truth_tables()

    def test_levels_and_depth(self):
        aig, _ = self._build()
        assert aig.depth() == 2

    def test_fanins_of_input_rejected(self):
        aig = Aig(1)
        with pytest.raises(NetlistError):
            aig.fanins(aig.inputs[0])


class TestSimulation:
    def test_exhaustive_matches_pointwise(self, rng):
        for _ in range(20):
            n = rng.randint(1, 5)
            aig = Aig(n)
            pool = [lit(node) for node in aig.inputs] + [CONST0, CONST1]
            for _ in range(10):
                a, b = rng.choice(pool), rng.choice(pool)
                if rng.random() < 0.5:
                    a = lit_not(a)
                pool.append(aig.add_and(a, b))
            aig.add_output(pool[-1])
            table = aig.to_truth_tables()[0]
            mask = full_mask(n)
            for t in range(1 << n):
                words = [(variable_pattern(i, n) >> t) & 1 for i in range(n)]
                assert aig.simulate(words, 1)[0] == table.value(t)

    def test_simulate_requires_mask(self):
        aig = Aig(1)
        aig.add_output(lit(aig.inputs[0]))
        with pytest.raises(NetlistError):
            aig.simulate([1], -1)

    def test_wrong_input_count(self):
        aig = Aig(2)
        with pytest.raises(NetlistError):
            aig.simulate([1], 1)


class TestCnfEncoding:
    def test_to_cnf_output_count(self, random_tables):
        from repro.networks.convert import tables_to_aig
        from repro.sat.cnf import CNF
        tables = random_tables(3, 2)
        aig = tables_to_aig(tables)
        cnf = CNF()
        inputs = cnf.new_vars(3)
        outs = aig.to_cnf(cnf, inputs)
        assert len(outs) == 2

    def test_to_cnf_wrong_inputs(self):
        from repro.sat.cnf import CNF
        aig = Aig(2)
        with pytest.raises(NetlistError):
            aig.to_cnf(CNF(), [1])
