"""Unit tests for depth-oriented MIG rewriting."""

import pytest

from repro.logic.truth_table import TruthTable
from repro.networks.aig import lit, lit_not
from repro.networks.convert import tables_to_mig
from repro.networks.mig import Mig
from repro.opt.mig_depth import depth_rewrite_once, mig_depth_rewrite
from repro.opt.mig_opt import aqfp_resynthesis


def _deep_chain():
    """M(x3, u, M(x2, u, M(x1, u, x0))): depth 3, reducible by swaps."""
    mig = Mig(5)
    x0, x1, x2, x3, u = (lit(n) for n in mig.inputs)
    inner1 = mig.add_maj(x1, u, x0)
    inner2 = mig.add_maj(x2, u, inner1)
    root = mig.add_maj(x3, u, inner2)
    mig.add_output(root)
    return mig


class TestDepthRewrite:
    def test_chain_depth_reduced(self):
        mig = _deep_chain()
        assert mig.depth() == 3
        out = mig_depth_rewrite(mig)
        assert out.depth() < 3
        assert out.to_truth_tables() == mig.to_truth_tables()

    def test_function_preserved_random(self, random_tables):
        for _ in range(15):
            tables = random_tables(4, 2)
            mig = tables_to_mig(tables)
            out = mig_depth_rewrite(mig)
            assert out.to_truth_tables() == tables
            assert out.depth() <= mig.depth()

    def test_single_sweep_preserves_function(self, random_tables):
        tables = random_tables(5, 2)
        mig = tables_to_mig(tables)
        out = depth_rewrite_once(mig)
        assert out.to_truth_tables() == tables

    def test_depth_aware_resynthesis_flag(self, random_tables):
        tables = random_tables(4, 2)
        mig = tables_to_mig(tables)
        plain = aqfp_resynthesis(mig)
        aware = aqfp_resynthesis(mig, depth_aware=True)
        assert aware.to_truth_tables() == tables
        assert aware.depth() <= plain.depth()

    def test_balanced_tree_untouched(self):
        mig = Mig(3)
        a, b, c = (lit(n) for n in mig.inputs)
        mig.add_output(mig.add_maj(a, b, c))
        out = mig_depth_rewrite(mig)
        assert out.depth() == 1
        assert out.size() == 1
