"""Fault tolerance of the process-pool backend and the engine.

The headline guarantee: because pool evaluation is pure, **worker
crashes, hung workers and pool loss never change results** — a run that
survived N pool restarts is bit-identical to the same run executed
serially.  These tests inject real faults (``os._exit`` in workers, a
wedged worker against ``batch_timeout``) through the engine's
environment hooks and check both the recovered results and the
surfaced counters.
"""

import json

import pytest

import repro.core.engine as engine_mod
from repro.core.config import RcgpConfig
from repro.core.engine import (
    EvolutionRun,
    ProcessPoolBackend,
    TelemetryWriter,
    encode_genome,
    read_telemetry,
)
from repro.core.synthesis import initialize_netlist
from repro.errors import WorkerPoolError
from repro.logic.truth_table import tabulate_word


def _decoder_spec():
    return tabulate_word(lambda x: 1 << x, 2, 4)


def _run(workers, **overrides):
    spec = _decoder_spec()
    kwargs = dict(generations=40, mutation_rate=0.1, seed=11,
                  offspring=4, shrink="always", workers=workers)
    kwargs.update(overrides)
    return EvolutionRun(spec, RcgpConfig(**kwargs)).run()


@pytest.fixture
def reset_worker_globals():
    """In-process use of the pool worker functions mutates module
    globals; restore them so later tests see a clean slate."""
    yield
    engine_mod._WORKER_EVALUATOR = None
    engine_mod._WORKER_PARENT = None
    engine_mod._WORKER_FAULT_COUNTDOWN = None
    engine_mod._WORKER_FAULT_MODE = ""


class TestCrashRecovery:
    def test_crashing_workers_recovered_bit_identical(self, monkeypatch):
        serial = _run(workers=0)
        # Every worker process hard-exits (os._exit, no cleanup) after
        # its 7th evaluation; at ~2 evaluations per worker per
        # generation the run must survive several BrokenProcessPool
        # storms, respawning the pool and re-dispatching each time.
        monkeypatch.setenv("RCGP_TEST_CRASH_AFTER_EVALS", "7")
        crashed = _run(workers=2)
        assert crashed.backend == "process-pool"
        assert crashed.worker_restarts > 0
        assert crashed.batches_retried > 0
        assert not crashed.degraded_to_inline
        assert crashed.fitness.key() == serial.fitness.key()
        assert crashed.netlist.describe() == serial.netlist.describe()
        assert crashed.generations == serial.generations

    def test_exhausted_retries_degrade_to_inline(self, monkeypatch):
        serial = _run(workers=0)
        # Workers die on their *first* evaluation and retries are
        # forbidden: the first batch must degrade the backend, and the
        # whole run completes inline — still bit-identical.
        monkeypatch.setenv("RCGP_TEST_CRASH_AFTER_EVALS", "1")
        degraded = _run(workers=2, batch_retries=0)
        assert degraded.backend == "process-pool"
        assert degraded.degraded_to_inline
        assert degraded.worker_restarts == 0  # no retry budget to spend
        assert degraded.fitness.key() == serial.fitness.key()
        assert degraded.netlist.describe() == serial.netlist.describe()
        assert degraded.evaluations == serial.evaluations

    def test_fault_counters_reach_telemetry(self, monkeypatch, tmp_path):
        path = tmp_path / "faults.jsonl"
        monkeypatch.setenv("RCGP_TEST_CRASH_AFTER_EVALS", "7")
        result = _run(workers=2, telemetry_path=str(path))
        events = read_telemetry(str(path))
        faults = [e for e in events if e["event"] == "worker_fault"]
        assert faults, "no worker_fault events despite injected crashes"
        assert faults[-1]["worker_restarts"] == result.worker_restarts
        assert faults[-1]["batches_retried"] == result.batches_retried
        end = [e for e in events if e["event"] == "run_end"][-1]
        assert end["worker_restarts"] == result.worker_restarts
        assert end["degraded_to_inline"] is False
        assert end["interrupted"] is False


class TestHangRecovery:
    def test_hung_worker_times_out_and_degrades(self, monkeypatch):
        serial = _run(workers=0, generations=10)
        # Workers wedge (sleep 600s) on their first evaluation; with a
        # short batch_timeout and no retries the backend must kill the
        # hung processes and finish the run inline, well under 600s.
        monkeypatch.setenv("RCGP_TEST_HANG_AFTER_EVALS", "1")
        hung = _run(workers=2, generations=10,
                    batch_timeout=0.5, batch_retries=0)
        assert hung.degraded_to_inline
        assert hung.fitness.key() == serial.fitness.key()
        assert hung.netlist.describe() == serial.netlist.describe()


class TestInterrupt:
    class _InterruptingTelemetry(TelemetryWriter):
        """Raises KeyboardInterrupt inside the generation loop, exactly
        where a real SIGINT would land mid-run."""

        def __init__(self, handle, after):
            super().__init__(handle)
            self._countdown = after

        def emit(self, event, **fields):
            super().emit(event, **fields)
            if event == "generation":
                self._countdown -= 1
                if self._countdown == 0:
                    raise KeyboardInterrupt

    def test_interrupt_returns_best_so_far(self, tmp_path):
        path = tmp_path / "interrupted.jsonl"
        spec = _decoder_spec()
        config = RcgpConfig(generations=200, mutation_rate=0.1, seed=11,
                            offspring=4, shrink="always", workers=0)
        with open(path, "w") as handle:
            telemetry = self._InterruptingTelemetry(handle, after=5)
            result = EvolutionRun(spec, config,
                                  telemetry=telemetry).run()
        assert result.interrupted
        assert result.generations < 200
        assert result.fitness.functional
        events = read_telemetry(str(path))
        end = [e for e in events if e["event"] == "run_end"]
        assert end and end[-1]["interrupted"] is True

    def test_interrupt_with_pool_kills_workers(self, tmp_path):
        path = tmp_path / "interrupted_pool.jsonl"
        spec = _decoder_spec()
        config = RcgpConfig(generations=200, mutation_rate=0.1, seed=11,
                            offspring=4, shrink="always", workers=2)
        with open(path, "w") as handle:
            telemetry = self._InterruptingTelemetry(handle, after=3)
            result = EvolutionRun(spec, config,
                                  telemetry=telemetry).run()
        assert result.interrupted
        assert result.backend == "process-pool"
        assert result.fitness.functional


class TestBackendInternals:
    def test_uninitialized_worker_raises_typed_error(
            self, reset_worker_globals):
        engine_mod._WORKER_EVALUATOR = None
        with pytest.raises(WorkerPoolError):
            engine_mod._pool_evaluate([])
        with pytest.raises(WorkerPoolError):
            engine_mod._pool_evaluate_deltas((), [])

    def test_batch_counters_not_double_counted_on_retry(self, monkeypatch):
        # Crash after 3 evaluations with a 5-genome batch on 2 workers:
        # the first dispatch loses partial progress, the retry (fresh
        # countdowns, ~3 evals/worker) succeeds.  eval_full must count
        # the successful dispatch only.
        monkeypatch.setenv("RCGP_TEST_CRASH_AFTER_EVALS", "3")
        spec = _decoder_spec()
        config = RcgpConfig(seed=3)
        backend = ProcessPoolBackend(spec, config, workers=2)
        try:
            genome = encode_genome(initialize_netlist(spec))
            results = backend.evaluate([genome] * 5)
            assert len(results) == 5
            assert all(f.functional for f in results)
            assert backend.batches_retried >= 1
            assert backend.eval_full == 5
        finally:
            backend.close()

    def test_terminate_is_safe_and_idempotent(self):
        spec = _decoder_spec()
        backend = ProcessPoolBackend(spec, RcgpConfig(seed=0), workers=2)
        backend.terminate()
        backend.terminate()
        backend.close()


class TestWorkerEpochInvalidation:
    """The worker-resident parent state must be rebuilt when the
    worker's own pattern set grows (SAT counterexample feedback)."""

    def _sampled_config(self):
        # Force sampled simulation: 2-input spec, exhaustive limit 1.
        return RcgpConfig(seed=5, exhaustive_input_limit=1,
                          simulation_patterns=32, verify_with_sat=False)

    def test_stale_state_rebuilt_at_chunk_entry(self, reset_worker_globals):
        spec = _decoder_spec()
        config = self._sampled_config()
        engine_mod._pool_initializer([t.bits for t in spec],
                                     spec[0].num_vars, config.to_dict())
        evaluator = engine_mod._WORKER_EVALUATOR
        parent = initialize_netlist(spec)
        genome = encode_genome(parent)
        import random as random_mod
        from repro.core.mutation import mutate_with_delta
        _, delta = mutate_with_delta(parent, random_mod.Random(1), config)

        engine_mod._pool_evaluate_deltas(genome, [delta])
        state_before = engine_mod._WORKER_PARENT[2]
        evaluator.add_counterexample(3)  # pattern set grows: epoch moves
        assert state_before.epoch != evaluator.pattern_epoch
        [fit], _ = engine_mod._pool_evaluate_deltas(genome, [delta])
        assert engine_mod._WORKER_PARENT[2].epoch == evaluator.pattern_epoch
        child = delta.apply_to(parent)
        assert fit == (evaluator.evaluate(child).success,
                       evaluator.evaluate(child).n_r,
                       evaluator.evaluate(child).n_g,
                       evaluator.evaluate(child).n_b)

    def test_stale_state_rebuilt_mid_chunk(self, reset_worker_globals):
        spec = _decoder_spec()
        config = self._sampled_config()
        engine_mod._pool_initializer([t.bits for t in spec],
                                     spec[0].num_vars, config.to_dict())
        evaluator = engine_mod._WORKER_EVALUATOR
        parent = initialize_netlist(spec)
        genome = encode_genome(parent)
        import random as random_mod
        from repro.core.mutation import mutate_with_delta
        deltas = [mutate_with_delta(parent, random_mod.Random(s),
                                    config)[1] for s in (1, 2, 3)]

        # Grow the pattern set *between deltas of one chunk*, as SAT
        # counterexample feedback would: wrap evaluate_incremental so
        # the first call advances the epoch after computing.
        real = evaluator.evaluate_incremental
        calls = {"n": 0}

        def growing(child, delta, state=None):
            fit = real(child, delta, state)
            calls["n"] += 1
            if calls["n"] == 1:
                evaluator.add_counterexample(2)
            return fit

        evaluator.evaluate_incremental = growing
        values, _ = engine_mod._pool_evaluate_deltas(genome, deltas)
        evaluator.evaluate_incremental = real
        assert engine_mod._WORKER_PARENT[2].epoch == evaluator.pattern_epoch
        # Every fitness matches full evaluation on the *final* (grown)
        # pattern set for the deltas evaluated after the growth.
        for delta, value in list(zip(deltas, values))[1:]:
            full = evaluator.evaluate(delta.apply_to(parent))
            assert value == (full.success, full.n_r, full.n_g, full.n_b)

    def test_engine_run_with_sat_growth_under_pool_oracle(
            self, monkeypatch):
        # End-to-end: sampled simulation *with* SAT feedback is not
        # parallel-safe, but an explicitly passed pool backend forces
        # workers to grow their own pattern sets mid-run.  With the
        # RCGP_CHECK_INCREMENTAL oracle armed in every worker, any
        # stale-state reuse fails the run loudly.
        monkeypatch.setenv("RCGP_CHECK_INCREMENTAL", "1")
        spec = _decoder_spec()
        config = RcgpConfig(generations=15, mutation_rate=0.15, seed=9,
                            offspring=4, shrink="always",
                            exhaustive_input_limit=1,
                            simulation_patterns=16)
        backend = ProcessPoolBackend(spec, config, workers=2)
        try:
            result = EvolutionRun(spec, config, backend=backend).run()
        finally:
            backend.close()
        assert result.fitness.functional
