"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a broken one is a bug.  Heavy
examples run here with reduced environment budgets (or are marked slow).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(name, env_extra=None, timeout=300):
    env = dict(os.environ)
    env.update(env_extra or {})
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=timeout, env=env,
    )
    assert result.returncode == 0, \
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


class TestExampleScripts:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "functionally verified   : True" in out

    def test_decoder_walkthrough(self):
        out = _run("decoder_walkthrough.py")
        assert "Step 3: RQFP buffer insertion" in out
        assert "this run" in out

    def test_windowed_large_circuit(self):
        out = _run("windowed_large_circuit.py",
                   env_extra={"RCGP_WINDOW_CIRCUIT": "intdiv4"})
        assert "windowed optimization" in out
        assert "final circuit" in out

    def test_reciprocal_sweep_small(self):
        out = _run("reciprocal_sweep.py",
                   env_extra={"RCGP_SWEEP_MAX_BITS": "4"})
        assert "intdiv4" in out

    def test_full_adder_three_ways_without_exact(self):
        out = _run("full_adder_three_ways.py",
                   env_extra={"RCGP_SKIP_EXACT": "1"})
        assert "Conventional reversible logic" in out
        assert "verified       : True" in out

    def test_build_revlib_suite(self, tmp_path):
        out = _run("build_revlib_suite.py", timeout=420)
        assert "ham3" in out and "verified      : True" in out

    def test_parallel_speedup(self):
        out = _run("parallel_speedup.py",
                   env_extra={"RCGP_SPEEDUP_CIRCUIT": "decoder_2_4",
                              "RCGP_SPEEDUP_GENERATIONS": "40",
                              "RCGP_SPEEDUP_OFFSPRING": "8",
                              "RCGP_SPEEDUP_WORKERS": "2"})
        assert "identical result" in out
        assert "pooled (workers=2)" in out

    def test_incremental_speedup(self):
        out = _run("incremental_speedup.py",
                   env_extra={"RCGP_INCR_CIRCUIT": "alu",
                              "RCGP_INCR_MUTANTS": "60",
                              "RCGP_INCR_GENERATIONS": "30",
                              "RCGP_INCR_OFFSPRING": "4"})
        assert "fitness keys identical" in out
        assert "identical result" in out
        assert "eval_incr" in out

    @pytest.mark.slow
    def test_pareto_front(self):
        out = _run("pareto_front.py", timeout=420)
        assert "Pareto archive" in out
        assert "verified against the specification" in out

    @pytest.mark.slow
    def test_convergence_curve(self):
        out = _run("convergence_curve.py", timeout=420)
        assert "multi-seed summary" in out
