"""Unit + property tests for the ROBDD manager."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.logic.bdd import BddManager, bdd_equivalent, build_rqfp_bdds
from repro.logic.truth_table import TruthTable


class TestBasics:
    def test_terminals(self):
        mgr = BddManager(2)
        assert mgr.constant(True) == mgr.TRUE
        assert mgr.constant(False) == mgr.FALSE

    def test_variable_evaluation(self):
        mgr = BddManager(3)
        x1 = mgr.var(1)
        assert mgr.evaluate(x1, [0, 1, 0]) == 1
        assert mgr.evaluate(x1, [1, 0, 1]) == 0

    def test_var_out_of_range(self):
        with pytest.raises(ReproError):
            BddManager(2).var(2)

    def test_canonical_sharing(self):
        """Identical functions are identical node ids."""
        mgr = BddManager(2)
        a, b = mgr.var(0), mgr.var(1)
        left = mgr.apply_and(a, b)
        right = mgr.apply_not(mgr.apply_or(mgr.apply_not(a),
                                           mgr.apply_not(b)))
        assert left == right  # De Morgan, canonically

    def test_reduction_no_redundant_tests(self):
        mgr = BddManager(2)
        a = mgr.var(0)
        assert mgr.apply_or(a, a) == a
        assert mgr.apply_and(a, mgr.TRUE) == a
        assert mgr.apply_xor(a, a) == mgr.FALSE


class TestOperators:
    def test_against_truth_tables(self, rng):
        for _ in range(25):
            n = rng.randint(1, 4)
            mgr = BddManager(n)
            fa = TruthTable(n, rng.getrandbits(1 << n))
            fb = TruthTable(n, rng.getrandbits(1 << n))
            na, nb = mgr.from_truth_table(fa), mgr.from_truth_table(fb)
            assert mgr.to_truth_table(mgr.apply_and(na, nb)) == (fa & fb)
            assert mgr.to_truth_table(mgr.apply_or(na, nb)) == (fa | fb)
            assert mgr.to_truth_table(mgr.apply_xor(na, nb)) == (fa ^ fb)
            assert mgr.to_truth_table(mgr.apply_not(na)) == ~fa

    def test_majority(self, rng):
        n = 3
        mgr = BddManager(n)
        nodes = [mgr.var(i) for i in range(n)]
        maj = mgr.apply_maj(*nodes)
        want = TruthTable.from_function(
            lambda a, b, c: (a & b) | (a & c) | (b & c), 3)
        assert mgr.to_truth_table(maj) == want

    def test_count_solutions(self, rng):
        for _ in range(20):
            n = rng.randint(1, 5)
            mgr = BddManager(n)
            table = TruthTable(n, rng.getrandbits(1 << n))
            node = mgr.from_truth_table(table)
            assert mgr.count_solutions(node) == table.count_ones()

    def test_size_counts_internal_nodes(self):
        mgr = BddManager(3)
        node = mgr.apply_xor(mgr.apply_xor(mgr.var(0), mgr.var(1)),
                             mgr.var(2))
        # Parity of 3 vars: the classic 3-level, 2-nodes-per-level BDD.
        assert mgr.size(node) == 5  # wait: 3 + 2 + ... checked below
        assert mgr.evaluate(node, [1, 1, 1]) == 1


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 5), st.data())
    def test_table_bdd_table(self, num_vars, data):
        bits = data.draw(st.integers(0, (1 << (1 << num_vars)) - 1))
        table = TruthTable(num_vars, bits)
        mgr = BddManager(num_vars)
        node = mgr.from_truth_table(table)
        assert mgr.to_truth_table(node) == table

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ReproError):
            BddManager(2).from_truth_table(TruthTable.variable(0, 3))


class TestRqfpBdds:
    def test_netlist_compilation_matches_simulation(self, rng):
        from repro.bench.random_circuits import random_rqfp
        for _ in range(10):
            netlist = random_rqfp(3, 5, 2, rng)
            mgr = BddManager(3)
            nodes = build_rqfp_bdds(netlist, mgr)
            tables = netlist.to_truth_tables()
            for node, table in zip(nodes, tables):
                assert mgr.to_truth_table(node) == table

    def test_bdd_equivalence_check(self):
        from repro.core.synthesis import initialize_netlist
        from repro.logic.truth_table import tabulate_word
        spec = tabulate_word(lambda x: 1 << x, 2, 4)
        netlist = initialize_netlist(spec)
        assert bdd_equivalent(netlist, spec)
        wrong = [~spec[0]] + spec[1:]
        assert not bdd_equivalent(netlist, wrong)
