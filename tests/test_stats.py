"""Unit tests for the multi-seed statistics harness."""

import pytest

from repro.core.config import RcgpConfig
from repro.harness.stats import MetricSummary, seed_sweep
from repro.logic.truth_table import tabulate_word


class TestMetricSummary:
    def test_basic_statistics(self):
        summary = MetricSummary.of([1, 2, 3, 4])
        assert summary.minimum == 1 and summary.maximum == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.stddev == pytest.approx(1.1180, abs=1e-3)

    def test_odd_median(self):
        assert MetricSummary.of([5, 1, 3]).median == 3

    def test_single_value(self):
        summary = MetricSummary.of([7])
        assert summary.mean == 7 and summary.stddev == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricSummary.of([])

    def test_str_contains_fields(self):
        text = str(MetricSummary.of([1, 2]))
        assert "mean" in text and "median" in text


class TestSeedSweep:
    def test_sweep_on_decoder(self):
        spec = tabulate_word(lambda x: 1 << x, 2, 4)

        def factory(seed):
            return RcgpConfig(generations=120, mutation_rate=0.1,
                              seed=seed, shrink="always")

        sweep = seed_sweep(spec, seeds=[1, 2, 3], config_factory=factory,
                           name="decoder_2_4")
        assert sweep.gates.minimum >= 1
        assert len(sweep.per_seed) == 3
        assert sweep.jjs.minimum >= 24 * sweep.gates.minimum
        report = sweep.report()
        assert "decoder_2_4" in report and "n_r" in report

    def test_empty_seed_list_rejected(self):
        spec = tabulate_word(lambda x: x, 1, 1)
        with pytest.raises(ValueError):
            seed_sweep(spec, seeds=[])
