"""Unit tests for the exact-synthesis baseline."""

import pytest

from repro.errors import ExactSynthesisTimeout
from repro.exact.encoding import decode, encode
from repro.exact.synthesizer import ExactSynthesizer, exact_synthesize
from repro.logic.truth_table import TruthTable, tabulate_word
from repro.sat.solver import SAT, Solver


def _and_spec():
    return [TruthTable.from_function(lambda a, b: a & b, 2)]


def _xor_spec():
    return [TruthTable.from_function(lambda a, b: a ^ b, 2)]


class TestEncoding:
    def test_decode_model_realizes_spec(self):
        enc = encode(_and_spec(), 1, 9)
        solver = Solver(enc.cnf)
        assert solver.solve() == SAT
        netlist = decode(enc, solver.model())
        assert netlist.to_truth_tables() == _and_spec()

    def test_unsat_when_too_few_gates(self):
        """XOR needs at least 2 RQFP gates (no single majority is XOR)."""
        enc = encode(_xor_spec(), 1, 9)
        from repro.sat.solver import UNSAT
        assert Solver(enc.cnf).solve() == UNSAT

    def test_garbage_cap_binds(self):
        """AND with 0 garbage allowed is UNSAT for 1 gate (2 dangle)."""
        from repro.sat.solver import UNSAT
        enc = encode(_and_spec(), 1, 0)
        assert Solver(enc.cnf).solve() == UNSAT

    def test_single_fanout_encoded(self):
        """Any model must satisfy the single-fan-out law."""
        enc = encode(_xor_spec(), 2, 6)
        solver = Solver(enc.cnf)
        assert solver.solve() == SAT
        netlist = decode(enc, solver.model())
        netlist.validate(require_single_fanout=True)


class TestSynthesizer:
    def test_and_is_one_gate_two_garbage(self):
        result = exact_synthesize(_and_spec(), max_gates=2)
        assert result.num_gates == 1
        assert result.num_garbage == 2
        assert result.gates_proved_optimal
        assert result.netlist.to_truth_tables() == _and_spec()

    def test_xor_needs_two_gates(self):
        result = exact_synthesize(_xor_spec(), max_gates=3,
                                  conflict_budget=300_000)
        assert result.num_gates == 2
        assert result.netlist.to_truth_tables() == _xor_spec()

    def test_majority_is_single_gate_free_garbage(self):
        spec = [TruthTable.from_function(
            lambda a, b, c: (a & b) | (a & c) | (b & c), 3)]
        result = exact_synthesize(spec, max_gates=2)
        assert result.num_gates == 1

    def test_identity_uses_zero_or_one_gate(self):
        spec = [TruthTable.variable(0, 1)]
        # A wire PO is legal: output reads the PI directly -> 1 gate
        # minimum is actually 0... the encoding requires >= 1 gate, so
        # expect exactly 1 with a pass-through function.
        result = exact_synthesize(spec, max_gates=2)
        assert result.num_gates == 1
        assert result.netlist.to_truth_tables() == spec

    def test_budget_exhaustion_raises_timeout(self):
        spec = tabulate_word(lambda x: 1 << x, 2, 4)
        synthesizer = ExactSynthesizer(conflict_budget=50, max_gates=6)
        with pytest.raises(ExactSynthesisTimeout) as info:
            synthesizer.synthesize(spec)
        assert info.value.conflicts >= 0

    def test_max_gates_exhausted_raises(self):
        spec = tabulate_word(lambda x: 1 << x, 2, 4)
        with pytest.raises(ExactSynthesisTimeout):
            exact_synthesize(spec, max_gates=1, conflict_budget=100_000)

    def test_empty_spec_rejected(self):
        from repro.errors import SynthesisError
        with pytest.raises(SynthesisError):
            exact_synthesize([])


@pytest.mark.slow
class TestDecoderOptimum:
    def test_decoder_2_4_matches_paper(self):
        """Paper Table 1: exact synthesis of decoder_2_4 = 3 gates,
        1 garbage output."""
        spec = tabulate_word(lambda x: 1 << x, 2, 4)
        result = exact_synthesize(spec, conflict_budget=600_000, max_gates=4)
        assert result.num_gates == 3
        assert result.num_garbage == 1
        assert result.netlist.to_truth_tables() == spec


class TestExactVersusTwoInputFunctions:
    """Property check: every nontrivial 2-input function is realizable
    with at most 2 gates, and the exact result always verifies."""

    def test_all_two_input_functions(self):
        from repro.logic.truth_table import TruthTable
        for bits in range(16):
            table = TruthTable(2, bits)
            if table.is_constant():
                continue  # constants need no gate (PO reads const port)
            result = exact_synthesize([table], max_gates=2,
                                      conflict_budget=200_000)
            assert result.num_gates <= 2, f"bits={bits:04b}"
            assert result.netlist.to_truth_tables() == [table]
            # XOR/XNOR need 2 gates; everything else is unate -> 1.
            if bits in (0b0110, 0b1001):
                assert result.num_gates == 2
            else:
                assert result.num_gates == 1

    def test_exact_never_beaten_by_rcgp(self):
        """On a spec where exact completes, RCGP cannot do better."""
        from repro.core import RcgpConfig, rcgp_synthesize
        spec = _and_spec()
        exact = exact_synthesize(spec, max_gates=2)
        rcgp = rcgp_synthesize(spec, RcgpConfig(generations=400, seed=1,
                                                shrink="always"))
        assert exact.num_gates <= rcgp.cost.n_r
