"""Differential fuzz harness: flat kernel vs object path vs SAT.

Every round draws a random specification and a random RQFP netlist,
drives both candidate representations through a random mutation chain,
and cross-checks every invariant the evolution engine silently relies
on:

* **genome codec** — ``encode_genome``/``decode_genome``/
  ``NetlistKernel.from_genome`` round-trip, and
  ``genome_with_delta(parent, delta) == encode_genome(child)``;
* **kernel vs object** — simulation, shrink, levels, buffer estimate
  and fan-out counts agree bit for bit after every mutation;
* **mutation parity** — the same RNG stream mutates the kernel and the
  object netlist into the same chromosome;
* **incremental vs full** — cone-aware incremental fitness equals full
  re-simulation for both representations;
* **SAT vs exhaustive simulation** — ``check_against_tables`` agrees
  with exhaustive truth-table comparison, UNSAT and SAT legs both, and
  returned counterexamples actually distinguish the circuits;
* **legality** — splitter insertion yields a fan-out-legal netlist
  whose scheduled buffer plan passes ``validate_circuit`` /
  ``check_circuit`` cleanly.

Usage::

    PYTHONPATH=src python tools/fuzz_diff.py --seed 0 --rounds 50
    PYTHONPATH=src python tools/fuzz_diff.py --seed 0 --only 17  # replay

Any mismatch prints a replay command, writes a ``fuzz_replay_*.json``
artifact (uploaded by CI on failure) and exits non-zero.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.config import RcgpConfig                      # noqa: E402
from repro.core.engine import (decode_genome, encode_genome,   # noqa: E402
                               genome_with_delta)
from repro.core.fitness import Evaluator                       # noqa: E402
from repro.core.kernel import NetlistKernel                    # noqa: E402
from repro.core.mutation import mutate_with_delta              # noqa: E402
from repro.logic.truth_table import TruthTable                 # noqa: E402
from repro.rqfp.buffers import estimate_buffers                # noqa: E402
from repro.rqfp.netlist import RqfpNetlist                     # noqa: E402
from repro.rqfp.splitters import insert_splitters              # noqa: E402
from repro.rqfp.validate import check_circuit, validate_circuit  # noqa: E402
from repro.sat.equivalence import check_against_tables         # noqa: E402

NUM_CONFIGS = 512
MUTATION_STEPS = 6


class Mismatch(AssertionError):
    """A differential invariant failed."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise Mismatch(message)


def round_rng(seed: int, round_index: int) -> random.Random:
    """Independent, well-mixed RNG stream for one fuzz round."""
    data = f"fuzz:{seed}:{round_index}".encode()
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big"))


def random_spec(rng: random.Random, num_vars: int,
                num_outputs: int) -> list:
    full = (1 << (1 << num_vars)) - 1
    return [TruthTable(num_vars, rng.getrandbits(1 << num_vars) & full)
            for _ in range(num_outputs)]


def random_netlist(rng: random.Random, num_inputs: int,
                   num_gates: int, num_outputs: int) -> RqfpNetlist:
    netlist = RqfpNetlist(num_inputs, "fuzz")
    for g in range(num_gates):
        limit = netlist.first_gate_port(g)  # const + PIs + earlier gates
        netlist.add_gate(rng.randrange(limit), rng.randrange(limit),
                         rng.randrange(limit),
                         rng.randrange(NUM_CONFIGS))
    for _ in range(num_outputs):
        netlist.add_output(rng.randrange(netlist.num_ports()))
    return netlist


def check_kernel_vs_object(netlist: RqfpNetlist, kernel: NetlistKernel,
                           words, mask) -> None:
    _check(encode_genome(netlist) == kernel.to_genome(),
           "genome: kernel and object encodings differ")
    _check(kernel.simulate(words, mask) == netlist.simulate(words, mask),
           "simulate: kernel diverged from object netlist")
    _check(kernel.shrink().to_genome()
           == NetlistKernel.from_netlist(netlist.shrink()).to_genome(),
           "shrink: kernel diverged from object netlist")
    _check(kernel.levels() == netlist.levels(),
           "levels: kernel diverged from object netlist")
    _check(kernel.estimate_buffers() == estimate_buffers(netlist),
           "buffer estimate: kernel diverged from object netlist")
    _check(kernel.fanout_counts_flat() == netlist.fanout_counts_flat(),
           "fan-out counts: kernel diverged from object netlist")


def check_codec(netlist: RqfpNetlist) -> None:
    genome = encode_genome(netlist)
    _check(encode_genome(decode_genome(genome)) == genome,
           "codec: decode/encode round trip changed the genome")
    _check(NetlistKernel.from_genome(genome).to_genome() == genome,
           "codec: kernel from_genome/to_genome changed the genome")


def check_incremental(evaluator: Evaluator, parent, child, delta) -> None:
    state = evaluator.prepare_parent(parent)
    incremental = evaluator.evaluate_incremental(child, delta, state)
    full = evaluator.evaluate(child)
    _check(incremental.key() == full.key(),
           f"incremental fitness {incremental} != full fitness {full}")


def check_sat_vs_simulation(netlist: RqfpNetlist, spec) -> None:
    result = check_against_tables(netlist.encoder(), spec)
    expected = netlist.to_truth_tables() == list(spec)
    _check(result.equivalent is not None,
           "SAT: budget exhausted on a tiny miter")
    _check(result.equivalent == expected,
           f"SAT said equivalent={result.equivalent}, exhaustive "
           f"simulation says {expected}")
    if result.equivalent is False:
        pattern = result.counterexample
        _check(pattern is not None, "SAT: inequivalent without model")
        tables = netlist.to_truth_tables()
        _check(any(t.value(pattern) != s.value(pattern)
                   for t, s in zip(tables, spec)),
               f"SAT counterexample {pattern:#x} does not distinguish "
               "the circuits")


def check_legality(netlist: RqfpNetlist) -> None:
    legal = insert_splitters(netlist)
    _check(legal.fanout_violations() == [],
           "insert_splitters left fan-out violations")
    _check(legal.to_truth_tables() == netlist.to_truth_tables(),
           "insert_splitters changed the function")
    plan = validate_circuit(legal)  # raises on any design-rule violation
    _check(check_circuit(legal, plan) == [],
           "check_circuit disagrees with validate_circuit")


def run_round(seed: int, round_index: int) -> None:
    rng = round_rng(seed, round_index)
    num_inputs = rng.randint(1, 4)
    num_outputs = rng.randint(1, 3)
    num_gates = rng.randint(1, 10)

    spec = random_spec(rng, num_inputs, num_outputs)
    netlist = random_netlist(rng, num_inputs, num_gates, num_outputs)
    kernel = NetlistKernel.from_netlist(netlist)
    config = RcgpConfig(seed=round_index, mutation_rate=0.3,
                        max_mutated_genes=4)
    evaluator = Evaluator(spec, config)
    words, mask = evaluator._words, evaluator._mask

    check_codec(netlist)
    check_kernel_vs_object(netlist, kernel, words, mask)
    check_sat_vs_simulation(netlist, spec)
    check_legality(netlist)
    # The UNSAT leg: a spec the netlist realizes by construction.
    check_sat_vs_simulation(netlist, netlist.to_truth_tables())

    parent_obj, parent_ker = netlist, kernel
    for step in range(MUTATION_STEPS):
        mutation_seed = rng.getrandbits(48)
        child_obj, delta_obj = mutate_with_delta(
            parent_obj, random.Random(mutation_seed), config)
        child_ker, delta_ker = mutate_with_delta(
            parent_ker, random.Random(mutation_seed), config)
        _check(delta_obj == delta_ker,
               f"step {step}: mutation deltas diverged across "
               "representations")
        _check(encode_genome(child_obj) == child_ker.to_genome(),
               f"step {step}: mutated genomes diverged across "
               "representations")
        _check(genome_with_delta(encode_genome(parent_obj), delta_obj)
               == encode_genome(child_obj),
               f"step {step}: genome_with_delta != encode(child)")
        check_kernel_vs_object(child_obj, child_ker, words, mask)
        check_incremental(evaluator, parent_obj, child_obj, delta_obj)
        check_incremental(evaluator, parent_ker, child_ker, delta_ker)
        check_legality(child_obj)
        parent_obj, parent_ker = child_obj, child_ker


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Differential fuzzing of kernel/object/incremental/"
                    "SAT/legality invariants.")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed (each round derives its own "
                             "stream; default 0)")
    parser.add_argument("--rounds", type=int, default=50,
                        help="number of fuzz rounds (default 50)")
    parser.add_argument("--only", type=int, default=None, metavar="ROUND",
                        help="replay a single round index")
    parser.add_argument("--artifact-dir", default=".",
                        help="where to write fuzz_replay_*.json on "
                             "failure (default: cwd)")
    args = parser.parse_args(argv)

    rounds = [args.only] if args.only is not None else range(args.rounds)
    failures = 0
    for round_index in rounds:
        try:
            run_round(args.seed, round_index)
        except Exception as exc:  # mismatch OR unexpected crash: both bugs
            failures += 1
            replay = (f"PYTHONPATH=src python tools/fuzz_diff.py "
                      f"--seed {args.seed} --only {round_index}")
            print(f"FAIL round {round_index}: {type(exc).__name__}: {exc}")
            print(f"  replay: {replay}")
            artifact = os.path.join(
                args.artifact_dir, f"fuzz_replay_{round_index}.json")
            with open(artifact, "w") as handle:
                json.dump({"seed": args.seed, "round": round_index,
                           "error": f"{type(exc).__name__}: {exc}",
                           "replay": replay}, handle, indent=2)
            print(f"  artifact: {artifact}")
    total = len(list(rounds))
    if failures:
        print(f"{failures}/{total} rounds failed")
        return 1
    print(f"all {total} rounds clean "
          f"(seed {args.seed}, {MUTATION_STEPS} mutations/round)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
