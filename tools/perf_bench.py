"""Perf-regression harness: run the inner-loop microbenchmarks,
persist ``BENCH_perf.json``, optionally gate on a committed baseline.

Usage::

    PYTHONPATH=src python tools/perf_bench.py             # full run
    PYTHONPATH=src python tools/perf_bench.py --quick     # CI smoke
    PYTHONPATH=src python tools/perf_bench.py --compare   # fail on >15%
                                                          # regression

``--compare`` reads the baseline from the output path (default
``BENCH_perf.json`` at the repo root), re-runs the suite, and exits
non-zero if any benchmark's rate dropped more than ``--threshold``
(fraction, default 0.15) below the baseline; the baseline file is only
overwritten when the comparison passes (or is not requested).

The benchmarks live in ``benchmarks/perf/microbench.py``; the JSON
schema is documented in ``docs/telemetry.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, REPO_ROOT)

from benchmarks.perf.microbench import run_benches  # noqa: E402


def derive(benches: dict) -> dict:
    """Cross-bench derived metrics (currently the parallel speedup)."""
    derived = {}
    serial = benches.get("run_serial", {}).get("rate")
    workers2 = benches.get("run_workers2", {}).get("rate")
    if serial and workers2:
        derived["run_workers2_speedup"] = round(workers2 / serial, 4)
    return derived


def compare(baseline: dict, fresh: dict, threshold: float):
    """Yield (bench, baseline rate, fresh rate, ratio) for regressions.

    Derived metrics are gated exactly like raw rates, so the parallel
    path silently regressing relative to serial (the failure mode that
    motivated ``run_workers2_speedup``) fails the same way a slow
    kernel does.
    """
    base_benches = baseline.get("benches", {})
    for name, entry in fresh["benches"].items():
        base = base_benches.get(name)
        if base is None or not base.get("rate"):
            continue
        ratio = entry["rate"] / base["rate"]
        if ratio < 1.0 - threshold:
            yield name, base["rate"], entry["rate"], ratio
    base_derived = baseline.get("derived", {})
    for name, value in fresh.get("derived", {}).items():
        base = base_derived.get(name)
        if not base:
            continue
        ratio = value / base
        if ratio < 1.0 - threshold:
            yield name, base, value, ratio


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Inner-loop perf microbenchmarks with a JSON "
                    "baseline gate.")
    parser.add_argument("--circuit", default="intdiv9",
                        help="Table-1 circuit to benchmark on")
    parser.add_argument("--kernel", default="flat",
                        choices=("flat", "object"),
                        help="candidate representation to measure")
    parser.add_argument("--quick", action="store_true",
                        help="small iteration counts (CI smoke)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="repetitions per benchmark, best-of")
    parser.add_argument("--skip-workers", action="store_true",
                        help="skip the workers=2 end-to-end benchmark")
    parser.add_argument("--compare", action="store_true",
                        help="fail if any rate regresses past the "
                             "threshold vs the existing output file")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default "
                             "0.15 = 15%%)")
    parser.add_argument("--min-workers2-speedup", type=float, default=None,
                        help="fail unless run_workers2 achieves at least "
                             "this fraction of the serial rate (absolute "
                             "bound, independent of the baseline file)")
    parser.add_argument("--output",
                        default=os.path.join(REPO_ROOT, "BENCH_perf.json"),
                        help="result path (default BENCH_perf.json at "
                             "the repo root)")
    args = parser.parse_args(argv)

    results = {
        "schema": 1,
        "circuit": args.circuit,
        "kernel": args.kernel,
        "quick": args.quick,
        "repeats": args.repeats,
        "python": platform.python_version(),
        # Host metadata so recorded rates are interpretable: a baseline
        # measured on one box must not silently gate a different one.
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "benches": run_benches(circuit=args.circuit, kernel=args.kernel,
                               quick=args.quick, repeats=args.repeats,
                               skip_workers=args.skip_workers),
    }
    results["derived"] = derive(results["benches"])

    width = max(len(name) for name in results["benches"])
    for name, entry in results["benches"].items():
        print(f"{name:<{width}}  {entry['rate']:>10.0f} /s  "
              f"({entry['iterations']} iterations)")
    for name, value in results["derived"].items():
        print(f"{name}: {value:.2f}x")

    speedup = results["derived"].get("run_workers2_speedup")
    if args.min_workers2_speedup is not None:
        if speedup is None:
            print("--min-workers2-speedup: need both run_serial and "
                  "run_workers2 (don't pass --skip-workers)",
                  file=sys.stderr)
            return 2
        if speedup < args.min_workers2_speedup:
            print(f"FAIL: run_workers2_speedup {speedup:.2f}x below "
                  f"the required {args.min_workers2_speedup:.2f}x",
                  file=sys.stderr)
            return 2

    if args.compare:
        if not os.path.exists(args.output):
            print(f"--compare: no baseline at {args.output}",
                  file=sys.stderr)
            return 2
        with open(args.output, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        regressions = list(compare(baseline, results, args.threshold))
        if regressions:
            print(f"\nFAIL: regression beyond "
                  f"{args.threshold:.0%} vs {args.output}:",
                  file=sys.stderr)
            for name, base, fresh_rate, ratio in regressions:
                print(f"  {name}: {base:.0f} -> {fresh_rate:.0f} /s "
                      f"({ratio:.2f}x)", file=sys.stderr)
            return 2
        print(f"\ncompare OK: no bench regressed beyond "
              f"{args.threshold:.0%} of {args.output}")

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
