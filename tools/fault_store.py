"""Crash-consistency harness for the job store: SIGKILL everywhere.

Two modes, both exercising real child processes over a real store
directory (not mocks — the point is that ``os.replace`` + ``fsync``
actually delivered):

* **Kill sweep** (default).  Runs one ``rcgp batch`` to completion as
  the reference, counts every interposed write point on the store's
  durable-write path (``RCGP_STORE_FAULT=count:<file>``), then for
  each point spawns a fresh child told to SIGKILL *itself* at exactly
  that point (``RCGP_STORE_FAULT=kill:<n>``).  After each kill the
  same command is re-run without faults and must (a) exit 0, (b) leave
  no stray tmp/lease files behind, and (c) produce a result payload
  identical to the reference on every deterministic field (netlist,
  fitness, cost structure, generations — wall-clock counters excluded).

* **Shared-store smoke** (``--shared``).  Launches two concurrent
  ``rcgp batch`` processes over one store directory with several jobs.
  Per-job leases must split the queue: both exit 0, every job is done,
  and no job's telemetry ever shows two owners — the "never run the
  same job twice at once" guarantee, observed end to end.

Usage::

    PYTHONPATH=src python tools/fault_store.py --seed 0
    PYTHONPATH=src python tools/fault_store.py --seed 0 --sample 7
    PYTHONPATH=src python tools/fault_store.py --shared

Any violation prints the failing kill index (re-runnable via
``--only N``) and exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
from typing import Any, Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.jobs import DONE, JobStore                          # noqa: E402

#: Result-payload fields that depend on wall clock or crash accounting
#: (a re-run slice legitimately re-counts evaluations), not on the
#: search itself.  Everything else must match bit for bit.
VOLATILE_RESULT_FIELDS = frozenset({
    "runtime", "evaluations", "sat_calls", "cache_hits", "eval_full",
    "eval_incremental", "ports_resimulated", "worker_restarts",
    "batches_retried", "bytes_shipped", "chunks_dispatched",
    "pipeline_stalls",
})


def batch_command(store: str, targets: Sequence[str], *,
                  generations: int, quantum: int, seed: int,
                  lease_ttl: Optional[float] = None) -> List[str]:
    """The exact ``rcgp batch`` invocation the harness crashes."""
    cmd = [sys.executable, "-m", "repro.cli", "batch", *targets,
           "--store", store, "--workers", "0",
           "--generations", str(generations),
           "--quantum", str(quantum), "--seed", str(seed)]
    if lease_ttl is not None:
        cmd += ["--lease-ttl", str(lease_ttl)]
    return cmd


def run_batch(cmd: List[str], *,
              fault: Optional[str] = None) -> subprocess.CompletedProcess:
    """Run one child batch, optionally under ``RCGP_STORE_FAULT``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    if fault is not None:
        env["RCGP_STORE_FAULT"] = fault
    else:
        env.pop("RCGP_STORE_FAULT", None)
    return subprocess.run(cmd, env=env, cwd=REPO_ROOT,
                          stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)


def count_write_points(cmd_for: "CommandFactory",
                       workdir: str) -> List[str]:
    """One clean instrumented run; returns the ``point:file`` trace.

    The trace length is the number of distinct instants a SIGKILL can
    land between ("just before the tmp write", "between write and
    rename", "after the rename is durable", "at lease creation"), and
    with ``--workers 0`` plus a fixed seed it is deterministic — the
    sweep replays the exact same schedule.
    """
    store = os.path.join(workdir, "count-store")
    trace = os.path.join(workdir, "points.log")
    proc = run_batch(cmd_for(store), fault=f"count:{trace}")
    if proc.returncode != 0:
        raise RuntimeError("instrumented reference run failed "
                           f"(rc={proc.returncode}):\n"
                           + proc.stdout.decode("utf-8", "replace"))
    with open(trace) as handle:
        return [line.strip() for line in handle if line.strip()]


class CommandFactory:
    """Builds the same batch command for any store directory."""

    def __init__(self, targets: Sequence[str], *, generations: int,
                 quantum: int, seed: int):
        self.targets = list(targets)
        self.generations = generations
        self.quantum = quantum
        self.seed = seed

    def __call__(self, store: str) -> List[str]:
        return batch_command(store, self.targets,
                             generations=self.generations,
                             quantum=self.quantum, seed=self.seed)


def stable_result_view(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A result payload with wall-clock/accounting fields removed.

    What remains is exactly what determinism promises: the synthesized
    netlist, fitness trajectory endpoints, generation count, spec,
    baseline netlist and the structural cost components.
    """
    view = {key: value for key, value in payload.items()
            if key not in VOLATILE_RESULT_FIELDS}
    for key in ("cost",):
        if isinstance(view.get(key), dict):
            view[key] = {k: v for k, v in view[key].items()
                         if k != "runtime"}
    baseline = view.get("baseline")
    if isinstance(baseline, dict) and isinstance(baseline.get("cost"),
                                                 dict):
        view["baseline"] = dict(baseline)
        view["baseline"]["cost"] = {
            k: v for k, v in baseline["cost"].items() if k != "runtime"}
    return view


def store_results(store_dir: str) -> Dict[str, Dict[str, Any]]:
    """``job_id -> stable result view`` for every finished job."""
    results: Dict[str, Dict[str, Any]] = {}
    store = JobStore(store_dir)
    for job_id in store.jobs():
        payload = store.load_result(job_id)
        if payload is not None:
            results[job_id] = stable_result_view(payload)
    return results


def assert_store_clean(store_dir: str) -> None:
    """No stray tmp files, stale-rename leftovers or held leases."""
    for dirpath, _dirnames, filenames in os.walk(store_dir):
        for fname in filenames:
            if ".tmp." in fname or ".stale." in fname:
                raise AssertionError(
                    f"stray write artifact survived recovery: "
                    f"{os.path.join(dirpath, fname)}")
            if fname == "lease.json":
                raise AssertionError(
                    f"lease not released after clean finish: "
                    f"{os.path.join(dirpath, fname)}")


def kill_sweep(targets: Sequence[str], *, generations: int, quantum: int,
               seed: int, sample: int = 1, only: Optional[int] = None,
               workdir: Optional[str] = None,
               verbose: bool = True) -> int:
    """SIGKILL a child batch at every write point; demand full recovery.

    Returns the number of points exercised; raises ``AssertionError``
    on the first violation.
    """
    cmd_for = CommandFactory(targets, generations=generations,
                             quantum=quantum, seed=seed)
    own_dir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="rcgp-fault-")
    try:
        reference_store = os.path.join(workdir, "reference-store")
        proc = run_batch(cmd_for(reference_store))
        if proc.returncode != 0:
            raise RuntimeError(
                f"reference run failed (rc={proc.returncode}):\n"
                + proc.stdout.decode("utf-8", "replace"))
        reference = store_results(reference_store)
        if not reference:
            raise RuntimeError("reference run produced no results")
        points = count_write_points(cmd_for, workdir)
        indices = [only] if only is not None else \
            list(range(0, len(points), max(1, sample)))
        if verbose:
            print(f"fault_store: {len(points)} write points, "
                  f"sweeping {len(indices)} "
                  f"(targets={list(targets)}, seed={seed})")
        for n in indices:
            label = points[n] if n < len(points) else "?"
            store = os.path.join(workdir, f"kill-{n}")
            killed = run_batch(cmd_for(store), fault=f"kill:{n}")
            if killed.returncode != -signal.SIGKILL:
                raise AssertionError(
                    f"kill point {n} ({label}): child exited "
                    f"{killed.returncode}, expected SIGKILL "
                    f"(replay: --only {n})")
            resumed = run_batch(cmd_for(store))
            if resumed.returncode != 0:
                raise AssertionError(
                    f"kill point {n} ({label}): restart exited "
                    f"{resumed.returncode} (replay: --only {n}):\n"
                    + resumed.stdout.decode("utf-8", "replace"))
            assert_store_clean(store)
            recovered = store_results(store)
            if recovered != reference:
                raise AssertionError(
                    f"kill point {n} ({label}): recovered results "
                    f"diverge from reference (replay: --only {n})\n"
                    f"reference: {json.dumps(reference, sort_keys=True)[:400]}\n"
                    f"recovered: {json.dumps(recovered, sort_keys=True)[:400]}")
            shutil.rmtree(store, ignore_errors=True)
            if verbose:
                print(f"  kill {n:>3} @ {label:<28} recovered "
                      "bit-identically")
        return len(indices)
    finally:
        if own_dir:
            shutil.rmtree(workdir, ignore_errors=True)


def shared_smoke(targets: Sequence[str], *, generations: int,
                 quantum: int, seed: int,
                 workdir: Optional[str] = None,
                 verbose: bool = True) -> Dict[str, List[str]]:
    """Two concurrent batches over one store must split the queue.

    Returns ``job_id -> sorted owner list`` (each must have at most one
    entry); raises ``AssertionError`` on any lease violation.
    """
    own_dir = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="rcgp-shared-")
    try:
        store_dir = os.path.join(workdir, "shared-store")
        cmd = batch_command(store_dir, targets, generations=generations,
                            quantum=quantum, seed=seed)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        env.pop("RCGP_STORE_FAULT", None)
        children = [subprocess.Popen(cmd, env=env, cwd=REPO_ROOT,
                                     stdout=subprocess.PIPE,
                                     stderr=subprocess.STDOUT)
                    for _ in range(2)]
        outputs = [child.communicate()[0] for child in children]
        for child, output in zip(children, outputs):
            if child.returncode != 0:
                raise AssertionError(
                    f"shared-store batch exited {child.returncode}:\n"
                    + output.decode("utf-8", "replace"))
        store = JobStore(store_dir)
        owners: Dict[str, List[str]] = {}
        for job_id in store.jobs():
            record = store.load_record(job_id) or {}
            if record.get("state") != DONE:
                raise AssertionError(
                    f"job {job_id} not done after both batches: "
                    f"{record.get('state')!r}")
            seen = set()
            for line in store.read_telemetry(job_id).splitlines():
                event = json.loads(line)
                if event.get("event") in ("job_start", "job_resume",
                                          "job_slice"):
                    seen.add(event["owner"])
            owners[job_id] = sorted(seen)
            if len(seen) > 1:
                raise AssertionError(
                    f"job {job_id} was driven by {len(seen)} owners "
                    f"concurrently: {sorted(seen)} — lease violated")
        if not owners:
            raise AssertionError("shared-store smoke ran no jobs")
        if verbose:
            distinct = {owner for names in owners.values()
                        for owner in names}
            print(f"fault_store: shared-store smoke ok — "
                  f"{len(owners)} jobs, single owner each "
                  f"({len(distinct)} schedulers participated)")
        return owners
    finally:
        if own_dir:
            shutil.rmtree(workdir, ignore_errors=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="SIGKILL crash-consistency sweep for the job store")
    parser.add_argument("--targets", nargs="+", default=["decoder_2_4"],
                        help="benchmark names / design files for the "
                             "child batches (default: decoder_2_4)")
    parser.add_argument("--generations", type=int, default=60)
    parser.add_argument("--quantum", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample", type=int, default=1,
                        help="exercise every N-th write point "
                             "(default 1 = all of them)")
    parser.add_argument("--only", type=int, default=None,
                        help="replay a single kill index")
    parser.add_argument("--shared", action="store_true",
                        help="run the two-process shared-store smoke "
                             "instead of the kill sweep")
    args = parser.parse_args(argv)
    try:
        if args.shared:
            shared_smoke(args.targets, generations=args.generations,
                         quantum=args.quantum, seed=args.seed)
        else:
            kill_sweep(args.targets, generations=args.generations,
                       quantum=args.quantum, seed=args.seed,
                       sample=args.sample, only=args.only)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
