"""Docs freshness check: extract and run the Python blocks in the docs.

Every fenced ```python block in ``docs/*.md`` and ``README.md`` is a
contract with the reader.  This tool keeps the contract honest:

* every block must **compile** (no syntax rot);
* a block whose first line starts with ``# doc: no-run`` is illustrative
  (it would spawn pools, write files, or assumes names in scope) — for
  those, only the ``import`` statements are extracted (via ``ast``) and
  executed, so imports of dead names still fail;
* every other block is executed in full, in a fresh namespace, from a
  throwaway working directory.

Run directly (``python tools/docs_smoke.py``) for a CI step, or import
``iter_blocks`` / ``run_block`` from ``tests/test_docs.py`` for a
per-block pytest parametrization.
"""

from __future__ import annotations

import ast
import os
import sys
import tempfile
import textwrap
from dataclasses import dataclass
from typing import Iterator, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

NO_RUN_MARKER = "# doc: no-run"

#: Files scanned for ```python fences, relative to the repo root.
DOC_FILES = ("README.md", "docs")


@dataclass(frozen=True)
class DocBlock:
    """One fenced ```python block lifted out of a markdown file."""

    path: str        # repo-relative markdown path
    lineno: int      # 1-based line of the opening fence
    source: str      # dedented block body

    @property
    def no_run(self) -> bool:
        first = self.source.lstrip().splitlines()[0] if self.source.strip() else ""
        return first.startswith(NO_RUN_MARKER)

    @property
    def label(self) -> str:
        mode = "imports-only" if self.no_run else "exec"
        return f"{self.path}:{self.lineno} [{mode}]"


def _markdown_files() -> List[str]:
    files = []
    for entry in DOC_FILES:
        full = os.path.join(REPO_ROOT, entry)
        if os.path.isdir(full):
            for name in sorted(os.listdir(full)):
                if name.endswith(".md"):
                    files.append(os.path.join(entry, name))
        elif os.path.exists(full):
            files.append(entry)
    return files


def extract_blocks(path: str) -> Iterator[DocBlock]:
    """Yield the ```python blocks of one markdown file."""
    with open(os.path.join(REPO_ROOT, path), encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    fence_line = None
    body: List[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if fence_line is None:
            if stripped.startswith("```python"):
                fence_line = number
                body = []
        elif stripped == "```":
            yield DocBlock(path, fence_line, textwrap.dedent("\n".join(body)))
            fence_line = None
        else:
            body.append(line)
    if fence_line is not None:
        raise ValueError(f"{path}:{fence_line}: unterminated ```python fence")


def iter_blocks() -> List[DocBlock]:
    """All python blocks across the scanned markdown files."""
    blocks: List[DocBlock] = []
    for path in _markdown_files():
        blocks.extend(extract_blocks(path))
    return blocks


def _imports_of(tree: ast.Module) -> ast.Module:
    """A module containing only the import statements of *tree*."""
    imports = [node for node in ast.walk(tree)
               if isinstance(node, (ast.Import, ast.ImportFrom))]
    module = ast.Module(body=imports, type_ignores=[])
    return ast.fix_missing_locations(module)


def run_block(block: DocBlock) -> None:
    """Compile *block*; exec it fully, or just its imports if ``no_run``.

    Raises whatever the block raises — SyntaxError on rot, ImportError
    on dead names, AssertionError on stale claims.
    """
    filename = f"<{block.path}:{block.lineno}>"
    tree = ast.parse(block.source, filename=filename)
    if block.no_run:
        code = compile(_imports_of(tree), filename, "exec")
        exec(code, {"__name__": "__docs_smoke__"})
        return
    code = compile(block.source, filename, "exec")
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory() as scratch:
        os.chdir(scratch)
        try:
            exec(code, {"__name__": "__docs_smoke__"})
        finally:
            os.chdir(cwd)


def main(argv: List[str]) -> int:
    blocks = iter_blocks()
    if not blocks:
        print("docs_smoke: no ```python blocks found", file=sys.stderr)
        return 1
    failures = 0
    for block in blocks:
        print(f"-- {block.label}", flush=True)
        try:
            run_block(block)
        except Exception:  # noqa: BLE001 - report every failing block
            failures += 1
            import traceback

            traceback.print_exc()
    ran = sum(1 for b in blocks if not b.no_run)
    print(f"docs_smoke: {len(blocks)} blocks "
          f"({ran} executed, {len(blocks) - ran} imports-only), "
          f"{failures} failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
