"""Docs freshness check: extract and check the code blocks in the docs.

Every fenced code block in ``docs/*.md`` and ``README.md`` is a
contract with the reader.  This tool keeps the contract honest:

* every ```python block must **compile** (no syntax rot);
* a python block whose first line starts with ``# doc: no-run`` is
  illustrative (it would spawn pools, write files, or assumes names in
  scope) — for those, only the ``import`` statements are extracted (via
  ``ast``) and executed, so imports of dead names still fail;
* every other python block is executed in full, in a fresh namespace,
  from a throwaway working directory;
* every ```bash / ```sh / ```console block is **linted**: command
  words must exist (an allowlist of shell/unix basics, plus anything
  path-like), ``rcgp`` invocations must name a real subcommand and only
  flags that subcommand's ``argparse`` surface actually accepts
  (checked by introspecting :func:`repro.cli.build_parser`),
  ``python -m`` modules must be importable, referenced ``.py`` files
  must exist, and ``curl`` URLs must hit a path in the service routing
  table (:data:`repro.service.ROUTES`).  A block whose first line is
  ``# doc: no-lint`` is skipped.

Run directly (``python tools/docs_smoke.py``) for a CI step, or import
``iter_blocks`` / ``run_block`` / ``iter_shell_blocks`` /
``check_shell_block`` from ``tests/test_docs.py`` for a per-block
pytest parametrization.
"""

from __future__ import annotations

import argparse
import ast
import importlib.util
import os
import re
import shlex
import sys
import tempfile
import textwrap
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

NO_RUN_MARKER = "# doc: no-run"
NO_LINT_MARKER = "# doc: no-lint"

#: Files scanned for code fences, relative to the repo root.
DOC_FILES = ("README.md", "docs")


@dataclass(frozen=True)
class DocBlock:
    """One fenced ```python block lifted out of a markdown file."""

    path: str        # repo-relative markdown path
    lineno: int      # 1-based line of the opening fence
    source: str      # dedented block body

    @property
    def no_run(self) -> bool:
        first = self.source.lstrip().splitlines()[0] if self.source.strip() else ""
        return first.startswith(NO_RUN_MARKER)

    @property
    def label(self) -> str:
        mode = "imports-only" if self.no_run else "exec"
        return f"{self.path}:{self.lineno} [{mode}]"


def _markdown_files() -> List[str]:
    files = []
    for entry in DOC_FILES:
        full = os.path.join(REPO_ROOT, entry)
        if os.path.isdir(full):
            for name in sorted(os.listdir(full)):
                if name.endswith(".md"):
                    files.append(os.path.join(entry, name))
        elif os.path.exists(full):
            files.append(entry)
    return files


def extract_blocks(path: str) -> Iterator[DocBlock]:
    """Yield the ```python blocks of one markdown file."""
    with open(os.path.join(REPO_ROOT, path), encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    fence_line = None
    body: List[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if fence_line is None:
            if stripped.startswith("```python"):
                fence_line = number
                body = []
        elif stripped == "```":
            yield DocBlock(path, fence_line, textwrap.dedent("\n".join(body)))
            fence_line = None
        else:
            body.append(line)
    if fence_line is not None:
        raise ValueError(f"{path}:{fence_line}: unterminated ```python fence")


def iter_blocks() -> List[DocBlock]:
    """All python blocks across the scanned markdown files."""
    blocks: List[DocBlock] = []
    for path in _markdown_files():
        blocks.extend(extract_blocks(path))
    return blocks


def _imports_of(tree: ast.Module) -> ast.Module:
    """A module containing only the import statements of *tree*."""
    imports = [node for node in ast.walk(tree)
               if isinstance(node, (ast.Import, ast.ImportFrom))]
    module = ast.Module(body=imports, type_ignores=[])
    return ast.fix_missing_locations(module)


def run_block(block: DocBlock) -> None:
    """Compile *block*; exec it fully, or just its imports if ``no_run``.

    Raises whatever the block raises — SyntaxError on rot, ImportError
    on dead names, AssertionError on stale claims.
    """
    filename = f"<{block.path}:{block.lineno}>"
    tree = ast.parse(block.source, filename=filename)
    if block.no_run:
        code = compile(_imports_of(tree), filename, "exec")
        exec(code, {"__name__": "__docs_smoke__"})
        return
    code = compile(block.source, filename, "exec")
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory() as scratch:
        os.chdir(scratch)
        try:
            exec(code, {"__name__": "__docs_smoke__"})
        finally:
            os.chdir(cwd)


# ----------------------------------------------------------------------
# Shell-block linting

#: Fence info strings treated as shell examples.
SHELL_FENCES = ("bash", "sh", "shell", "console")

#: Command words a doc example may use without further checking.
SHELL_ALLOWLIST = frozenset({
    "cat", "cd", "cp", "curl", "diff", "echo", "env", "export", "find",
    "git", "grep", "head", "jq", "kill", "ls", "mkdir", "mv", "pip",
    "pytest", "python", "python3", "rcgp", "rm", "set", "sleep",
    "source", "tail", "tar", "test", "touch", "true", "wait", "watch",
    "wc", "xargs",
})

#: Shell keywords that may precede a command in one logical line.
_SHELL_KEYWORDS = frozenset({
    "do", "done", "elif", "else", "fi", "if", "then", "time", "until",
    "while",
})

_SEPARATORS = frozenset({"|", "||", "&&", ";", ";;", "&"})

#: curl flags that consume the next token.
_CURL_VALUE_FLAGS = frozenset({
    "-X", "--request", "-d", "--data", "--data-binary", "--data-raw",
    "-H", "--header", "-o", "--output", "-m", "--max-time", "-u",
    "--user", "-T", "--upload-file", "-w", "--write-out",
})

#: Placeholders docs use inside example URLs/arguments, replaced by a
#: plausible job id before route matching.
_PLACEHOLDER = re.compile(r"\$\{?[A-Za-z_][A-Za-z0-9_]*\}?"
                          r"|\{[A-Za-z_][A-Za-z0-9_-]*\}"
                          r"|<[A-Za-z_][A-Za-z0-9_-]*>")


@dataclass(frozen=True)
class ShellBlock:
    """One fenced shell block lifted out of a markdown file."""

    path: str        # repo-relative markdown path
    lineno: int      # 1-based line of the opening fence
    fence: str       # "bash" / "sh" / "shell" / "console"
    source: str      # raw block body

    @property
    def no_lint(self) -> bool:
        first = self.source.lstrip().splitlines()[0] \
            if self.source.strip() else ""
        return first.startswith(NO_LINT_MARKER)

    @property
    def label(self) -> str:
        mode = "skipped" if self.no_lint else "lint"
        return f"{self.path}:{self.lineno} [{self.fence} {mode}]"


def extract_shell_blocks(path: str) -> Iterator[ShellBlock]:
    """Yield the shell blocks of one markdown file."""
    with open(os.path.join(REPO_ROOT, path), encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    fence_line = None
    fence_kind = ""
    body: List[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if fence_line is None:
            if stripped.startswith("```"):
                kind = stripped[3:].strip().lower()
                if kind in SHELL_FENCES:
                    fence_line, fence_kind, body = number, kind, []
                elif kind == "":
                    pass  # plain fence: not a shell block
        elif stripped == "```":
            yield ShellBlock(path, fence_line, fence_kind,
                             "\n".join(body))
            fence_line = None
        else:
            body.append(line)
    if fence_line is not None:
        raise ValueError(
            f"{path}:{fence_line}: unterminated ```{fence_kind} fence")


def iter_shell_blocks() -> List[ShellBlock]:
    """All shell blocks across the scanned markdown files."""
    blocks: List[ShellBlock] = []
    for path in _markdown_files():
        blocks.extend(extract_shell_blocks(path))
    return blocks


def shell_commands(block: ShellBlock) -> List[Tuple[int, str]]:
    """``(lineno, logical command)`` pairs of one shell block.

    Handles ``console`` prompts (only ``$ ``-prefixed lines are
    commands, the rest is output), backslash continuations, comments
    and heredocs (the body of a ``<<EOF`` is not shell).
    """
    commands: List[Tuple[int, str]] = []
    pending: Optional[Tuple[int, str]] = None
    heredoc_end: Optional[str] = None
    for offset, line in enumerate(block.source.splitlines()):
        lineno = block.lineno + 1 + offset
        if heredoc_end is not None:
            if line.strip() == heredoc_end:
                heredoc_end = None
            continue
        if pending is not None:
            line = pending[1] + " " + line.strip()
            lineno = pending[0]
            pending = None
        elif block.fence == "console":
            if not line.startswith("$ "):
                continue  # prompt-less lines are displayed output
            line = line[2:]
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.endswith("\\"):
            pending = (lineno, stripped[:-1].strip())
            continue
        heredoc = re.search(r"<<-?\s*'?([A-Za-z_][A-Za-z0-9_]*)'?",
                            stripped)
        if heredoc:
            heredoc_end = heredoc.group(1)
            stripped = stripped[:heredoc.start()].strip()
            if not stripped:
                continue
        commands.append((lineno, stripped))
    if pending is not None:
        commands.append(pending)
    return commands


def _split_simple(command: str) -> List[List[str]]:
    """Split one logical command into pipeline/list segments.

    Redirections (and their targets) are dropped; ``$(`` command
    substitutions and backticks make a segment unlintable and clear it.
    """
    lex = shlex.shlex(command, posix=True, punctuation_chars=True)
    lex.whitespace_split = True
    try:
        tokens = list(lex)
    except ValueError:
        return []  # unbalanced quotes: surfaced by the caller
    segments: List[List[str]] = []
    current: List[str] = []
    skip_next = False
    for token in tokens:
        if skip_next:
            skip_next = False
            continue
        if token in _SEPARATORS:
            if current:
                segments.append(current)
            current = []
        elif all(ch in "<>&|;()" for ch in token) or \
                re.fullmatch(r"\d*[<>]+&?\d*", token):
            # redirection: drop it and its target (2>&1 carries its
            # own target in the token, nothing to skip)
            skip_next = "&" not in token
            if token in ("(", ")"):
                skip_next = False
        else:
            current.append(token)
    if current:
        segments.append(current)
    return segments


_RCGP_SURFACE: Optional[Dict[str, argparse.ArgumentParser]] = None


def _rcgp_surface() -> Dict[str, argparse.ArgumentParser]:
    """``subcommand -> argparse subparser`` for the installed CLI."""
    global _RCGP_SURFACE
    if _RCGP_SURFACE is None:
        from repro.cli import build_parser
        parser = build_parser()
        action = next(a for a in parser._actions
                      if isinstance(a, argparse._SubParsersAction))
        _RCGP_SURFACE = dict(action.choices)
    return _RCGP_SURFACE


def _check_rcgp(tokens: List[str]) -> List[str]:
    surface = _rcgp_surface()
    if len(tokens) < 2:
        return ["rcgp: missing subcommand"]
    sub = tokens[1]
    if sub not in surface:
        return [f"rcgp: unknown subcommand {sub!r} "
                f"(have: {', '.join(sorted(surface))})"]
    options = surface[sub]._option_string_actions
    problems = []
    for token in tokens[2:]:
        if token.startswith("-") and not token.lstrip("-").isdigit():
            flag = token.split("=", 1)[0]
            if flag not in options:
                problems.append(
                    f"rcgp {sub}: unknown flag {flag!r}")
    return problems


def _check_python(tokens: List[str]) -> List[str]:
    if "-m" in tokens:
        index = tokens.index("-m") + 1
        if index >= len(tokens):
            return ["python -m: missing module name"]
        module = tokens[index]
        try:
            found = importlib.util.find_spec(module) is not None
        except (ImportError, ValueError):
            found = False
        if not found:
            return [f"python -m {module}: module not importable"]
        return []
    for token in tokens[1:]:
        if token == "-":
            return []  # script on stdin (heredoc)
        if not token.startswith("-"):
            if token.endswith(".py") and not os.path.isabs(token) \
                    and not os.path.exists(os.path.join(REPO_ROOT, token)):
                return [f"python: no such file {token!r}"]
            return []
    return []


def _check_curl(tokens: List[str]) -> List[str]:
    method = "GET"
    url = None
    index = 1
    while index < len(tokens):
        token = tokens[index]
        if token in ("-X", "--request"):
            if index + 1 < len(tokens):
                method = tokens[index + 1].upper()
            index += 2
            continue
        if token in _CURL_VALUE_FLAGS:
            if token in ("-d", "--data", "--data-binary", "--data-raw") \
                    and method == "GET":
                method = "POST"  # curl's implicit -d semantics
            index += 2
            continue
        if token.startswith("-"):
            index += 1
            continue
        if url is None:
            url = token
        index += 1
    if url is None:
        return ["curl: no URL in example"]
    if "://" not in url:
        return []  # host-relative example: nothing to match against
    substituted = _PLACEHOLDER.sub("ab12cd34ef56", url)
    from urllib.parse import urlsplit
    path = urlsplit(substituted).path or "/"
    from repro.service import route_exists
    if not route_exists(method, path):
        return [f"curl: {method} {path} is not a service endpoint"]
    return []


def check_shell_command(command: str) -> List[str]:
    """Problems with one logical shell command (empty list = clean)."""
    problems: List[str] = []
    for segment in _split_simple(command):
        # shift leading keywords and env assignments off the head
        while segment and (segment[0] in _SHELL_KEYWORDS
                           or "=" in segment[0].split("/")[0]):
            segment = segment[1:]
        if not segment:
            continue
        head = segment[0]
        if head.startswith("$") or head == "for":
            continue  # substitution / loop header: not lintable
        if head == "rcgp":
            problems.extend(_check_rcgp(segment))
        elif head in ("python", "python3"):
            problems.extend(_check_python(segment))
        elif head == "curl":
            problems.extend(_check_curl(segment))
        elif head not in SHELL_ALLOWLIST and "/" not in head:
            problems.append(f"unknown command {head!r} (not in the "
                            "docs_smoke allowlist)")
    return problems


def check_shell_block(block: ShellBlock) -> List[str]:
    """Every problem in one shell block, as ``file:line: message``."""
    if block.no_lint:
        return []
    problems: List[str] = []
    for lineno, command in shell_commands(block):
        for problem in check_shell_command(command):
            problems.append(f"{block.path}:{lineno}: {problem}")
    return problems


def main(argv: List[str]) -> int:
    blocks = iter_blocks()
    if not blocks:
        print("docs_smoke: no ```python blocks found", file=sys.stderr)
        return 1
    failures = 0
    for block in blocks:
        print(f"-- {block.label}", flush=True)
        try:
            run_block(block)
        except Exception:  # noqa: BLE001 - report every failing block
            failures += 1
            import traceback

            traceback.print_exc()
    shell_blocks = iter_shell_blocks()
    shell_problems = 0
    for block in shell_blocks:
        print(f"-- {block.label}", flush=True)
        problems = check_shell_block(block)
        for problem in problems:
            print(f"   {problem}", file=sys.stderr)
        shell_problems += len(problems)
    ran = sum(1 for b in blocks if not b.no_run)
    print(f"docs_smoke: {len(blocks)} python blocks "
          f"({ran} executed, {len(blocks) - ran} imports-only), "
          f"{failures} failed; {len(shell_blocks)} shell blocks, "
          f"{shell_problems} problems")
    return 1 if failures or shell_problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
