#!/usr/bin/env python3
"""End-to-end cluster smoke: ``rcgp serve`` + two ``rcgp worker``.

Starts a real HTTP service with a cluster listener, dials two real
worker processes into it over loopback TCP, submits a fixed-seed job,
SIGKILLs one worker mid-run, and requires:

* the served artifact is **bit-identical** to an uninterrupted
  in-process run of the same spec + config at the same slice quantum
  (netlist, fitness and every eval counter — slicing re-primes the
  parent at each resume, so equal counters require equal quanta);
* ``/v1/workers`` and the ``rcgp_cluster_*`` metrics reflect the
  fleet (two registered, one surviving the kill, remote spans served);
* the per-slice telemetry names the remote workers that evaluated it.

Exit code 0 = all checks passed.  Run from a checkout::

    python tools/cluster_smoke.py

"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.api import Session  # noqa: E402
from repro.bench import get_benchmark  # noqa: E402
from repro.core.config import RcgpConfig  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

TOKEN = "cluster-smoke-token"


def wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if predicate():
                return
        except Exception:  # noqa: BLE001 - service still starting
            pass
        time.sleep(0.1)
    raise SystemExit(f"cluster smoke: timed out waiting for {what}")


def rcgp(*argv, env):
    return subprocess.Popen([sys.executable, "-m", "repro.cli", *argv],
                            cwd=REPO_ROOT, env=env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="rcgp serve + two rcgp worker over loopback, with "
                    "a SIGKILL mid-run; asserts bit-identity to the "
                    "in-process baseline.")
    parser.add_argument("--benchmark", default="decoder_2_4")
    parser.add_argument("--generations", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--port", type=int, default=8797)
    parser.add_argument("--cluster-port", type=int, default=8796)
    parser.add_argument("--store", default="store_cluster")
    parser.add_argument("--quantum", type=int, default=200)
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    spec = get_benchmark(args.benchmark).spec()
    # eval_cache_size=0 keeps the replay-span path eligible so the run
    # exercises the pipelined span protocol over TCP, not just batches.
    config = RcgpConfig(generations=args.generations, seed=args.seed,
                        eval_cache_size=0)

    env = dict(os.environ,
               RCGP_CLUSTER_TOKEN=TOKEN,
               PYTHONPATH=os.pathsep.join(
                   p for p in (os.path.join(REPO_ROOT, "src"),
                               os.environ.get("PYTHONPATH")) if p))

    serve = rcgp("serve", "--store", args.store,
                 "--port", str(args.port),
                 "--cluster-port", str(args.cluster_port),
                 "--quantum", str(args.quantum), env=env)
    workers = [rcgp("worker",
                    "--connect", f"127.0.0.1:{args.cluster_port}",
                    "--name", f"smoke-w{index}", env=env)
               for index in (1, 2)]
    client = ServiceClient(f"http://127.0.0.1:{args.port}",
                           timeout=30.0)
    try:
        wait_for(lambda: client.health()["status"] == "ok", 30,
                 "the service to come up")
        wait_for(lambda: client.workers()["live"] == 2, 30,
                 "both workers to register")
        print("cluster smoke: 2 workers registered:",
              [w["name"] for w in client.workers()["workers"]])

        job_id = client.submit(spec, config,
                               name=args.benchmark)["job_id"]
        wait_for(lambda: client.status(job_id).get(
            "generations_done", 0) > 0, 60, "the first slice")

        # SIGKILL one worker mid-run: the coordinator must drop it and
        # re-dispatch to the survivor without changing a single bit.
        os.kill(workers[0].pid, signal.SIGKILL)
        print("cluster smoke: SIGKILLed smoke-w1 mid-run")

        final = client.wait(job_id, timeout=args.timeout)
        if final["state"] != "done":
            raise SystemExit(f"job ended {final['state']!r}: "
                             f"{final.get('error')}")
        served = client.result(job_id)

        with Session(workers=0, quantum=args.quantum) as session:
            baseline = session.synthesize(spec, config)
        assert served.netlist.describe() == \
            baseline.netlist.describe(), \
            "killing a worker changed the synthesized netlist"
        assert served.evolution.fitness.key() == \
            baseline.evolution.fitness.key(), "fitness diverged"
        for field in ("evaluations", "eval_full", "eval_incremental"):
            got = getattr(served.evolution, field)
            want = getattr(baseline.evolution, field)
            assert got == want, \
                f"{field}: served {got} != in-process {want}"
        assert served.verify()

        # Liveness is heartbeat-driven (idle sockets are only probed
        # every DEFAULT_HEARTBEAT seconds), so the dead worker may
        # linger in /v1/workers briefly after the kill.
        wait_for(lambda: client.workers()["live"] == 1, 30,
                 "fleet to reap the killed worker")
        view = client.workers()
        assert view["cluster"] is True
        assert view["workers"][0]["name"] == "smoke-w2"
        metrics = client.metrics()
        assert metrics["rcgp_cluster_workers_live"] == 1.0
        assert metrics["rcgp_cluster_spans_remote_total"] > 0, \
            "no replay span ever ran on a remote worker"

        slices = [event for event in client.telemetry(job_id)
                  if event.get("event") == "job_slice"
                  and event.get("cluster_workers")]
        assert slices, "no job_slice telemetry names a remote worker"
        names = {name for event in slices
                 for name in event["cluster_workers"]}
        assert names <= {"smoke-w1", "smoke-w2"}, names

        print("cluster smoke OK:",
              json.dumps({
                  "benchmark": args.benchmark,
                  "evaluations": served.evolution.evaluations,
                  "spans_remote":
                      metrics["rcgp_cluster_spans_remote_total"],
                  "slice_workers": sorted(names),
              }))
        return 0
    finally:
        serve.send_signal(signal.SIGTERM)
        code = serve.wait(timeout=60)
        assert code == 0, f"rcgp serve drained with exit {code}"
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
                worker.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
